package trace

// Anomaly-triggered capture: the flight-recorder half of the observability
// plane. Tracing runs always-on (sampled) into the per-node rings; nobody
// reads them until something goes wrong. A Capture is the tripwire — runtime
// layers call Trigger when they see an anomaly (a deadline miss, a retry
// budget exhausted, ErrNodeDown, a heat-migration storm) and the controller
// snapshots the rings *cluster-wide* into one correlated Dump, so the trace
// that explains the anomaly is preserved before the rings overwrite it.
//
// Triggers are rate-limited by a cooldown (anomalies arrive in bursts — one
// dead node fails every in-flight call) and collection runs asynchronously
// off the triggering path: the failing call that trips the recorder is not
// also charged the cluster-wide collection.

import (
	"sync"
	"sync/atomic"
	"time"
)

// Trigger reasons, one per anomaly class the runtime watches.
const (
	// TrigNodeDown: a call failed with ErrNodeDown (peer also failed its
	// health probe).
	TrigNodeDown = "node-down"
	// TrigDeadlineMiss: a call missed its deadline with the peer alive.
	TrigDeadlineMiss = "deadline-miss"
	// TrigRetryExhausted: a retried call used its whole attempt budget.
	TrigRetryExhausted = "retry-exhausted"
	// TrigHeatStorm: one heat tick saturated its migration budget.
	TrigHeatStorm = "heat-storm"
	// TrigManual: requested through the debug endpoint.
	TrigManual = "manual"
)

// keepDumps bounds the retained dump list; older dumps fall off.
const keepDumps = 4

// DefaultCaptureCooldown spaces captures when the owner does not choose.
const DefaultCaptureCooldown = 5 * time.Second

// Dump is one correlated cluster-wide ring snapshot.
type Dump struct {
	// Seq numbers dumps from this controller, 1-based.
	Seq int64
	// Reason is the Trig* constant; Detail is free-form trigger context
	// (which call failed, against which node).
	Reason string
	Detail string
	// Node is the node that triggered; TimeNs the trigger time (the
	// controller's clock).
	Node   int32
	TimeNs int64
	// Events is the merged, clock-aligned timeline from every reachable
	// ring; Errs lists the sources that could not be collected (a crashed
	// peer's ring is unreachable over RPC — in-process collectors still read
	// it directly).
	Events []Event
	Errs   []string
}

// Capture is the anomaly-capture controller: trigger hooks in, dumps out.
// One controller is shared by everything that can observe an anomaly in a
// process (or, in-process, a whole cluster).
type Capture struct {
	node     int32
	cooldown int64 // ns
	collect  func() ([]Event, []string)

	nowNs func() int64 // injectable for virtual-time tests
	sync  bool         // run collection on the triggering goroutine (tests)

	lastNs     atomic.Int64
	seq        atomic.Int64
	triggered  atomic.Int64
	suppressed atomic.Int64
	captured   atomic.Int64

	sink atomic.Pointer[func(Dump)]

	mu    sync.Mutex
	dumps []Dump
}

// NewCapture builds a controller. collect gathers the cluster-wide merged
// timeline plus per-source error strings (best-effort: a partial dump beats
// none); it runs on a fresh goroutine per accepted trigger. cooldown <= 0
// uses DefaultCaptureCooldown; node identifies the triggering process in
// dumps (-1 for an in-process cluster's shared controller).
func NewCapture(node int32, cooldown time.Duration, collect func() ([]Event, []string)) *Capture {
	if cooldown <= 0 {
		cooldown = DefaultCaptureCooldown
	}
	c := &Capture{
		node:     node,
		cooldown: int64(cooldown),
		collect:  collect,
		nowNs:    func() int64 { return time.Now().UnixNano() },
	}
	// Far-past sentinel so the first trigger always passes the cooldown gate
	// (also under virtual-time clocks that start at 0).
	c.lastNs.Store(-1 << 62)
	return c
}

// SetNow overrides the controller's clock (virtual-time tests). Not safe
// concurrently with Trigger.
func (c *Capture) SetNow(now func() int64) { c.nowNs = now }

// SetSynchronous makes Trigger run the collection inline instead of on a
// fresh goroutine, so tests observe the dump as soon as Trigger returns.
func (c *Capture) SetSynchronous(on bool) { c.sync = on }

// SetSink installs a callback invoked with each completed dump (amberd
// writes a Chrome trace file). The callback runs on the collection
// goroutine.
func (c *Capture) SetSink(fn func(Dump)) {
	if fn == nil {
		c.sink.Store(nil)
		return
	}
	c.sink.Store(&fn)
}

// Trigger reports an anomaly. If the cooldown window since the last accepted
// trigger has passed, a cluster-wide collection starts (asynchronously,
// unless SetSynchronous) and Trigger returns true; otherwise the trigger is
// counted and suppressed. Nil-safe, so call sites need no wiring check.
func (c *Capture) Trigger(reason, detail string) bool {
	if c == nil {
		return false
	}
	c.triggered.Add(1)
	now := c.nowNs()
	for {
		last := c.lastNs.Load()
		if now-last < c.cooldown {
			c.suppressed.Add(1)
			return false
		}
		if c.lastNs.CompareAndSwap(last, now) {
			break
		}
	}
	if c.sync {
		c.run(reason, detail, now)
	} else {
		go c.run(reason, detail, now)
	}
	return true
}

func (c *Capture) run(reason, detail string, now int64) {
	evs, errs := c.collect()
	d := Dump{
		Seq:    c.seq.Add(1),
		Reason: reason,
		Detail: detail,
		Node:   c.node,
		TimeNs: now,
		Events: evs,
		Errs:   errs,
	}
	c.mu.Lock()
	c.dumps = append(c.dumps, d)
	if len(c.dumps) > keepDumps {
		c.dumps = c.dumps[len(c.dumps)-keepDumps:]
	}
	c.mu.Unlock()
	c.captured.Add(1)
	if fn := c.sink.Load(); fn != nil {
		(*fn)(d)
	}
}

// Dumps returns the retained dumps, oldest first.
func (c *Capture) Dumps() []Dump {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Dump(nil), c.dumps...)
}

// Last returns the most recent dump.
func (c *Capture) Last() (Dump, bool) {
	if c == nil {
		return Dump{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.dumps) == 0 {
		return Dump{}, false
	}
	return c.dumps[len(c.dumps)-1], true
}

// Stats reports the controller's counters for the metrics exposition.
func (c *Capture) Stats() map[string]int64 {
	if c == nil {
		return nil
	}
	return map[string]int64{
		"capture_triggers":   c.triggered.Load(),
		"capture_suppressed": c.suppressed.Load(),
		"captures":           c.captured.Load(),
	}
}
