package trace

import (
	"testing"
	"time"
)

func TestCaptureTriggerAndCooldown(t *testing.T) {
	tr := New(3, 64)
	tr.SetEnabled(true)
	tr.Emit(Event{Kind: KInvokeStart, Trace: 9, Span: 1})
	tr.Emit(Event{Kind: KInvokeEnd, Trace: 9, Span: 1})

	var clock int64 = 1_000_000
	collects := 0
	c := NewCapture(3, 100*time.Millisecond, func() ([]Event, []string) {
		collects++
		return tr.Snapshot(), []string{"node 7: unreachable"}
	})
	c.SetNow(func() int64 { return clock })
	c.SetSynchronous(true)

	if !c.Trigger(TrigNodeDown, "proc 1 to node 7") {
		t.Fatal("first trigger suppressed")
	}
	// Inside the cooldown window: suppressed, no second collection.
	clock += int64(50 * time.Millisecond)
	if c.Trigger(TrigNodeDown, "again") {
		t.Fatal("trigger inside cooldown accepted")
	}
	if collects != 1 {
		t.Fatalf("collections = %d, want 1", collects)
	}
	// Past the window: accepted again.
	clock += int64(60 * time.Millisecond)
	if !c.Trigger(TrigDeadlineMiss, "later") {
		t.Fatal("trigger past cooldown suppressed")
	}

	dumps := c.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d, want 2", len(dumps))
	}
	if dumps[0].Reason != TrigNodeDown || dumps[0].Seq != 1 || len(dumps[0].Events) != 2 {
		t.Fatalf("first dump wrong: %+v", dumps[0])
	}
	if len(dumps[0].Errs) != 1 {
		t.Fatalf("partial-collection errors not preserved: %+v", dumps[0].Errs)
	}
	last, ok := c.Last()
	if !ok || last.Reason != TrigDeadlineMiss || last.Seq != 2 {
		t.Fatalf("last dump wrong: %+v", last)
	}
	st := c.Stats()
	if st["capture_triggers"] != 3 || st["capture_suppressed"] != 1 || st["captures"] != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestCaptureRetainsLastN(t *testing.T) {
	var clock int64
	c := NewCapture(-1, time.Millisecond, func() ([]Event, []string) { return nil, nil })
	c.SetNow(func() int64 { return clock })
	c.SetSynchronous(true)
	for i := 0; i < keepDumps+3; i++ {
		clock += int64(2 * time.Millisecond)
		if !c.Trigger(TrigManual, "n") {
			t.Fatalf("trigger %d suppressed", i)
		}
	}
	dumps := c.Dumps()
	if len(dumps) != keepDumps {
		t.Fatalf("retained %d dumps, want %d", len(dumps), keepDumps)
	}
	if dumps[len(dumps)-1].Seq != int64(keepDumps+3) {
		t.Fatalf("newest dump seq = %d, want %d", dumps[len(dumps)-1].Seq, keepDumps+3)
	}
}

func TestCaptureNilSafe(t *testing.T) {
	var c *Capture
	if c.Trigger(TrigManual, "x") {
		t.Fatal("nil capture accepted a trigger")
	}
	if d := c.Dumps(); d != nil {
		t.Fatal("nil capture returned dumps")
	}
	if _, ok := c.Last(); ok {
		t.Fatal("nil capture returned a last dump")
	}
	if st := c.Stats(); st != nil {
		t.Fatal("nil capture returned stats")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := New(0, 64)
	tr.SetEnabled(true)
	if !tr.OnFor(7) {
		t.Fatal("modulus 0 must record every journey")
	}
	tr.SetSample(4)
	if tr.Sample() != 4 {
		t.Fatalf("sample = %d", tr.Sample())
	}
	if tr.OnFor(7) || !tr.OnFor(8) {
		t.Fatal("modulus 4 must select exactly journeys ≡ 0 (mod 4)")
	}
	tr.SetEnabled(false)
	if tr.OnFor(8) {
		t.Fatal("disabled tracer recorded")
	}
	var nilT *Tracer
	if nilT.OnFor(8) || nilT.Sample() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestShift(t *testing.T) {
	evs := []Event{{TimeNs: 100}, {TimeNs: 200}}
	Shift(evs, -30)
	if evs[0].TimeNs != 70 || evs[1].TimeNs != 170 {
		t.Fatalf("shift wrong: %+v", evs)
	}
	Shift(evs, 0) // no-op fast path
	if evs[0].TimeNs != 70 {
		t.Fatal("zero shift mutated events")
	}
}
