// Chrome trace_event export: one "process" per Amber node, one "thread" per
// logical Amber thread, so chrome://tracing (or Perfetto's legacy loader)
// shows a migrating thread as aligned spans hopping between node swimlanes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one record of the trace_event JSON array format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Pid   int64          `json:"pid"`
	Tid   uint64         `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders events (any mix of nodes, typically Collect output) as
// a Chrome trace_event JSON document.
func WriteChrome(w io.Writer, evs []Event) error {
	out := make([]chromeEvent, 0, 2*len(evs)+8)

	// Metadata: name each node "process" and each logical thread, so the
	// viewer labels swimlanes meaningfully.
	nodes := map[int32]bool{}
	threads := map[int32]map[uint64]bool{}
	for _, ev := range evs {
		nodes[ev.Node] = true
		if ev.Thread != 0 {
			if threads[ev.Node] == nil {
				threads[ev.Node] = map[uint64]bool{}
			}
			threads[ev.Node][ev.Thread] = true
		}
	}
	nodeIDs := make([]int32, 0, len(nodes))
	for id := range nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: int64(id),
			Args: map[string]any{"name": fmt.Sprintf("node %d", id)},
		})
		tids := make([]uint64, 0, len(threads[id]))
		for tid := range threads[id] {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: int64(id), Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("amber thread %#x", tid)},
			})
		}
	}

	for _, ev := range evs {
		ce := chromeEvent{
			Ts:  float64(ev.TimeNs) / 1e3,
			Pid: int64(ev.Node),
			Tid: ev.Thread,
			Cat: "amber",
		}
		args := map[string]any{}
		if ev.Trace != 0 {
			args["trace"] = hexID(ev.Trace)
		}
		if ev.Span != 0 {
			args["span"] = hexID(ev.Span)
		}
		if ev.Parent != 0 {
			args["parent"] = hexID(ev.Parent)
		}
		if ev.Obj != 0 {
			args["obj"] = hexID(ev.Obj)
		}
		switch ev.Kind {
		case KInvokeStart, KExecStart:
			ce.Ph = "B"
			ce.Name = spanName(ev)
		case KInvokeEnd, KExecEnd:
			ce.Ph = "E"
			ce.Name = spanName(ev)
		default:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Name = ev.Kind.String()
			if ev.Arg != 0 || ev.Kind == KMigrateIn || ev.Kind == KMigrateOut {
				args["arg"] = ev.Arg
			}
			if ev.Label != "" {
				args["label"] = ev.Label
			}
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

func spanName(ev Event) string {
	prefix := "invoke"
	if ev.Kind == KExecStart || ev.Kind == KExecEnd {
		prefix = "exec"
	}
	if ev.Label != "" {
		return prefix + " " + ev.Label
	}
	return prefix
}

func hexID(v uint64) string { return fmt.Sprintf("%#x", v) }

// WriteTimeline renders events as a plain-text timeline, one line per event,
// with timestamps relative to the first event. This is the human-readable
// dump behind /trace?last=N.
func WriteTimeline(w io.Writer, evs []Event) {
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no trace events)")
		return
	}
	t0 := evs[0].TimeNs
	for _, ev := range evs {
		fmt.Fprintf(w, "%+12.3fus node=%d", float64(ev.TimeNs-t0)/1e3, ev.Node)
		if ev.Thread != 0 {
			fmt.Fprintf(w, " thread=%#x", ev.Thread)
		}
		fmt.Fprintf(w, " %-16s", ev.Kind.String())
		if ev.Obj != 0 {
			fmt.Fprintf(w, " obj=%#x", ev.Obj)
		}
		if ev.Label != "" {
			fmt.Fprintf(w, " %s", ev.Label)
		}
		if ev.Span != 0 {
			fmt.Fprintf(w, " span=%#x", ev.Span)
		}
		if ev.Parent != 0 {
			fmt.Fprintf(w, " parent=%#x", ev.Parent)
		}
		if ev.Arg != 0 {
			fmt.Fprintf(w, " arg=%d", ev.Arg)
		}
		fmt.Fprintln(w)
	}
}
