package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock makes event timestamps deterministic and strictly increasing.
func fakeClock(t *Tracer) func() int64 {
	var n int64
	t.nowNs = func() int64 { n++; return n }
	return t.nowNs
}

func TestDisabledEmitsNothing(t *testing.T) {
	tr := New(3, 16)
	if tr.On() {
		t.Fatal("tracer should start disabled")
	}
	tr.Emit(Event{Kind: KInvokeStart})
	if got := tr.Len(); got != 0 {
		t.Fatalf("disabled tracer buffered %d events", got)
	}
	var nilTracer *Tracer
	if nilTracer.On() {
		t.Fatal("nil tracer must report off")
	}
	nilTracer.Emit(Event{Kind: KInvokeStart}) // must not panic
	nilTracer.SetEnabled(true)                // must not panic
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	// The zero-cost contract: a disabled instrumentation site is one atomic
	// load, no Event construction, no allocation. The guard pattern below is
	// exactly what every call site in core/transport/wire uses.
	tr := New(0, 16)
	SetGlobal(tr)
	defer SetGlobal(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.On() {
			tr.Emit(Event{Kind: KInvokeStart, Label: "never"})
		}
		if GlobalOn() {
			GlobalEmit(Event{Kind: KGobFallback, Label: "never"})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per op, want 0", allocs)
	}
}

func TestRingOverwriteKeepsLastN(t *testing.T) {
	tr := New(1, 8)
	fakeClock(tr)
	tr.SetEnabled(true)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: KInvokeStart, Span: uint64(i + 1)})
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want ring capacity 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot holds %d events, want 8", len(evs))
	}
	// Last-N semantics: spans 13..20 survive, oldest first.
	for i, ev := range evs {
		if want := uint64(13 + i); ev.Span != want {
			t.Fatalf("event %d has span %d, want %d", i, ev.Span, want)
		}
	}
	last := tr.Last(3)
	if len(last) != 3 || last[0].Span != 18 || last[2].Span != 20 {
		t.Fatalf("Last(3) = %+v, want spans 18..20", last)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestSizeRoundsUpToPowerOfTwo(t *testing.T) {
	tr := New(0, 100)
	tr.SetEnabled(true)
	for i := 0; i < 200; i++ {
		tr.Emit(Event{Kind: KHintHit})
	}
	if got := tr.Len(); got != 128 {
		t.Fatalf("ring capacity = %d, want 128 (100 rounded up)", got)
	}
}

func TestNextSpanIsNodeSalted(t *testing.T) {
	a, b := New(1, 16), New(2, 16)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		for _, s := range []uint64{a.NextSpan(), b.NextSpan()} {
			if seen[s] {
				t.Fatalf("span %#x minted twice", s)
			}
			seen[s] = true
		}
	}
	if a.NextSpan()>>40 != 1 || b.NextSpan()>>40 != 2 {
		t.Fatal("span IDs do not carry their node salt")
	}
}

func TestCollectMergesByTimestamp(t *testing.T) {
	n0 := []Event{{TimeNs: 10, Node: 0, Trace: 7}, {TimeNs: 40, Node: 0, Trace: 7}}
	n1 := []Event{{TimeNs: 20, Node: 1, Trace: 7}, {TimeNs: 30, Node: 1, Trace: 9}}
	all := Collect(n0, n1)
	if len(all) != 4 {
		t.Fatalf("merged %d events, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].TimeNs < all[i-1].TimeNs {
			t.Fatalf("merge out of order at %d: %+v", i, all)
		}
	}
	j := FilterTrace(all, 7)
	if len(j) != 3 {
		t.Fatalf("FilterTrace(7) = %d events, want 3", len(j))
	}
}

func TestWriteChromeProducesLoadableJSON(t *testing.T) {
	tr := New(0, 64)
	fakeClock(tr)
	tr.SetEnabled(true)
	tr.Emit(Event{Kind: KThreadStart, Trace: 42, Thread: 42, Label: "Relay"})
	tr.Emit(Event{Kind: KInvokeStart, Trace: 42, Span: 1, Thread: 42, Obj: 0xbeef, Label: "Relay"})
	tr.Emit(Event{Kind: KMigrateOut, Trace: 42, Span: 1, Thread: 42, Arg: 1})
	tr.Emit(Event{Kind: KInvokeEnd, Trace: 42, Span: 1, Thread: 42, Obj: 0xbeef, Label: "Relay"})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "B") ||
		!strings.Contains(joined, "E") || !strings.Contains(joined, "i") {
		t.Fatalf("chrome trace missing expected phases (got %q)", joined)
	}
	// Spans must be balanced or the viewer renders garbage.
	if strings.Count(joined, "B") != strings.Count(joined, "E") {
		t.Fatalf("unbalanced B/E phases: %q", joined)
	}
}

func TestWriteTimeline(t *testing.T) {
	tr := New(2, 16)
	fakeClock(tr)
	tr.SetEnabled(true)
	tr.Emit(Event{Kind: KHintHit, Obj: 0x10, Arg: 3})
	tr.Emit(Event{Kind: KExecStart, Trace: 5, Span: 9, Thread: 5, Label: "Add"})
	var buf bytes.Buffer
	WriteTimeline(&buf, tr.Snapshot())
	out := buf.String()
	for _, want := range []string{"hint.hit", "exec.start", "Add"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestGlobalTracer(t *testing.T) {
	if GlobalOn() {
		t.Fatal("no global tracer installed, GlobalOn must be false")
	}
	GlobalEmit(Event{Kind: KDialRetry}) // no-op, must not panic
	tr := New(7, 16)
	tr.SetEnabled(true)
	SetGlobal(tr)
	defer SetGlobal(nil)
	if !GlobalOn() {
		t.Fatal("GlobalOn false after install")
	}
	GlobalEmit(Event{Kind: KDialRetry, Arg: 2})
	evs := tr.Snapshot()
	if len(evs) != 1 || evs[0].Kind != KDialRetry || evs[0].Node != 7 {
		t.Fatalf("global emit landed wrong: %+v", evs)
	}
}
