// Package trace records the journey of logical Amber threads across the
// cluster. Amber's signature mechanism is function shipping — a thread *moves*
// to the object's node on remote invocation (§2, §4 of the paper) — so the
// natural unit of observability is one thread's sequence of hops, stitched
// across nodes into a single trace.
//
// Each node owns a Tracer: a lock-free ring buffer of fixed-shape typed
// events. Writers claim a slot with one atomic increment and publish the
// event with one atomic pointer store; the ring overwrites the oldest events
// once full (last-N semantics), and readers never block writers. The whole
// layer is zero-cost when disabled: every instrumentation site performs a
// single atomic enabled-check and allocates nothing on that path.
//
// Identity model: a trace ID is the logical thread's cluster-unique ID (the
// journey *is* the thread), and span IDs are node-salted sequence numbers
// minted wherever a span begins. Both ride in the rpc request envelope, so
// the events a migrating thread leaves on different nodes reassemble into one
// parented tree (see Collect / ChromeTrace).
package trace

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Kind tags one event type. The taxonomy follows the runtime's hot paths:
// invocation spans, thread migration, object mobility, location-hint cache
// traffic, and slow-path escapes (gob fallback, dial retry).
type Kind uint8

const (
	// KInvokeStart/KInvokeEnd bracket an invocation span on the node where
	// the invoking thread currently is (local execution or the shipping leg).
	KInvokeStart Kind = iota + 1
	KInvokeEnd
	// KExecStart/KExecEnd bracket the remote execution span on the node the
	// thread migrated to.
	KExecStart
	KExecEnd
	// KMigrateOut: the thread left this node (Arg = destination node).
	KMigrateOut
	// KMigrateIn: the thread arrived on this node (Arg = previous node).
	KMigrateIn
	// KObjectMove: an object migration completed (Arg = destination node).
	KObjectMove
	// KForward: a routed request was forwarded along the chain (Arg = next).
	KForward
	// KHintHit/KHintMiss/KHintStaleRetry: location-hint cache traffic (§3.3).
	KHintHit
	KHintMiss
	KHintStaleRetry
	// KGobFallback: a message missed the fast wire codec (Label = type).
	KGobFallback
	// KDialRetry: the TCP transport retried a peer dial (Arg = peer node).
	KDialRetry
	// KThreadStart: a new Amber thread was started (Trace = its journey ID).
	KThreadStart
	// KRetry: a call attempt timed out and was retried (Arg = attempt number).
	KRetry
	// KPeerDown: a peer failed its health probe and was marked down
	// (Arg = peer node).
	KPeerDown
	// KPeerUp: a down peer answered again and was marked up (Arg = peer node).
	KPeerUp
	// KDedupHit: a retried idempotent request was answered from the dedup
	// window instead of re-executing (Arg = origin node).
	KDedupHit
	// KReplicaInstall: a demand-pulled immutable replica was installed from a
	// piggybacked invoke-reply snapshot (Arg = source node).
	KReplicaInstall
	// KReplicaHit: a local invoke was satisfied by an installed replica
	// instead of shipping the thread.
	KReplicaHit
	// KHeatMove: the heat tracker migrated a hot object toward its dominant
	// caller (Arg = destination node).
	KHeatMove
)

// String names the event kind for timelines and the introspection endpoint.
func (k Kind) String() string {
	switch k {
	case KInvokeStart:
		return "invoke.start"
	case KInvokeEnd:
		return "invoke.end"
	case KExecStart:
		return "exec.start"
	case KExecEnd:
		return "exec.end"
	case KMigrateOut:
		return "migrate.out"
	case KMigrateIn:
		return "migrate.in"
	case KObjectMove:
		return "object.move"
	case KForward:
		return "forward"
	case KHintHit:
		return "hint.hit"
	case KHintMiss:
		return "hint.miss"
	case KHintStaleRetry:
		return "hint.stale-retry"
	case KGobFallback:
		return "gob.fallback"
	case KDialRetry:
		return "dial.retry"
	case KThreadStart:
		return "thread.start"
	case KRetry:
		return "rpc.retry"
	case KPeerDown:
		return "peer.down"
	case KPeerUp:
		return "peer.up"
	case KDedupHit:
		return "dedup.hit"
	case KReplicaInstall:
		return "replica.install"
	case KReplicaHit:
		return "replica.hit"
	case KHeatMove:
		return "heat.move"
	}
	return "unknown"
}

// Event is one ring-buffer record. All fields are exported so dumps cross
// the wire on the gob fallback without ceremony.
type Event struct {
	// TimeNs is the wall-clock timestamp (UnixNano) in the recording node's
	// clock. The collector merges by this field after converting each remote
	// node's events into the collector's clock: the per-peer offset is
	// estimated at the RPC ping/pong midpoint (see rpc.PeerClockOffset) and
	// applied with Shift, so cross-node spans in one journey no longer
	// overlap or invert when clocks disagree. Same-machine deployments are
	// exact either way.
	TimeNs int64
	// Trace identifies the logical thread's journey (== the thread's
	// cluster-unique ID for thread-driven events; 0 for node-level events).
	Trace uint64
	// Span identifies this event's span; Parent is the span it nests under
	// (0 = root). Span IDs are node-salted and therefore cluster-unique.
	Span   uint64
	Parent uint64
	// Thread is the logical Amber thread ID (may equal Trace).
	Thread uint64
	// Node is the node the event was recorded on.
	Node int32
	// Kind tags the event type.
	Kind Kind
	// Obj is the object address involved, if any.
	Obj uint64
	// Arg is kind-specific: destination/previous node for migrations and
	// forwards, byte counts for transport events.
	Arg int64
	// Label is kind-specific text: the method name for invocation spans, the
	// Go type for gob fallbacks.
	Label string
}

// DefaultRingSize is the per-node event capacity when TracerConfig leaves it
// zero. At ~10 events per remote invocation this holds the last few thousand
// operations.
const DefaultRingSize = 1 << 13

// Tracer is one node's event ring. The zero value is unusable; use New.
type Tracer struct {
	node    int32
	on      atomic.Bool
	sample  atomic.Uint64 // journey sampling modulus (<=1 = record all)
	head    atomic.Uint64
	spanSeq atomic.Uint64
	mask    uint64
	slots   []atomic.Pointer[Event]
	nowNs   func() int64
	dropped atomic.Int64
}

// New creates a tracer for the given node with the given ring capacity
// (rounded up to a power of two; 0 = DefaultRingSize). It starts disabled.
func New(node int32, size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	return &Tracer{
		node:  node,
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Event], size),
	}
}

// Node reports the node this tracer records for.
func (t *Tracer) Node() int32 { return t.node }

// SetEnabled turns event recording on or off. Safe to call concurrently with
// Emit; in-flight emits may land just after disabling.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.on.Store(on)
}

// On reports whether recording is enabled. This is the single atomic check
// instrumentation sites perform on the fast path; when false the caller must
// do nothing else (in particular, it must not build an Event).
func (t *Tracer) On() bool { return t != nil && t.on.Load() }

// SetSample sets journey sampling for the always-on flight recorder: with
// modulus n, OnFor records only journeys whose ID ≡ 0 (mod n) — 1-in-n of
// the thread population at full event fidelity, rather than every journey at
// reduced fidelity. 0 or 1 records everything.
func (t *Tracer) SetSample(n uint64) {
	if t == nil {
		return
	}
	t.sample.Store(n)
}

// Sample reports the current sampling modulus (0/1 = record all).
func (t *Tracer) Sample() uint64 {
	if t == nil {
		return 0
	}
	return t.sample.Load()
}

// OnFor reports whether events for the given journey should be recorded:
// tracing enabled and the journey selected by the sampling modulus. Because
// a trace ID is the thread's cluster-unique ID and travels in the rpc
// envelope, every node makes the identical decision for one journey — a
// sampled journey is recorded on all its hops, an unsampled one on none.
// Node-level events (no journey) should keep using On.
func (t *Tracer) OnFor(journey uint64) bool {
	if !t.On() {
		return false
	}
	s := t.sample.Load()
	return s <= 1 || journey%s == 0
}

// NextSpan mints a cluster-unique span ID (node-salted sequence).
func (t *Tracer) NextSpan() uint64 {
	return uint64(uint32(t.node))<<40 | (t.spanSeq.Add(1) & (1<<40 - 1))
}

// Emit records one event if the tracer is enabled. The Node field is stamped
// by the tracer; TimeNs is stamped unless the caller pre-filled it. Emit is
// lock-free: one atomic fetch-add claims a slot, one atomic store publishes.
func (t *Tracer) Emit(ev Event) {
	if !t.On() {
		return
	}
	ev.Node = t.node
	if ev.TimeNs == 0 {
		ev.TimeNs = t.now()
	}
	i := t.head.Add(1) - 1
	if i > t.mask { // ring wrapped: the oldest event is overwritten
		t.dropped.Add(1)
	}
	t.slots[i&t.mask].Store(&ev)
}

// now returns the current timestamp; tests may override nowNs for
// deterministic ordering.
func (t *Tracer) now() int64 {
	if t.nowNs != nil {
		return t.nowNs()
	}
	return time.Now().UnixNano()
}

// Dropped reports how many events the ring has overwritten since Reset.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Len reports how many events are currently held (≤ ring capacity).
func (t *Tracer) Len() int {
	h := t.head.Load()
	if h > t.mask {
		return int(t.mask + 1)
	}
	return int(h)
}

// Snapshot copies out the buffered events sorted by timestamp. Events being
// written concurrently may be missed or included; each returned event is
// internally consistent (pointer publication, never torn).
func (t *Tracer) Snapshot() []Event {
	out := make([]Event, 0, t.Len())
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

// Last returns the most recent n events (all of them if n <= 0).
func (t *Tracer) Last(n int) []Event {
	evs := t.Snapshot()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Reset discards all buffered events (enabled state is unchanged).
func (t *Tracer) Reset() {
	for i := range t.slots {
		t.slots[i].Store(nil)
	}
	t.head.Store(0)
	t.dropped.Store(0)
}

// Collect merges event sets from several nodes into one timeline, sorted by
// timestamp. It is the cross-node stitch: because trace and span IDs
// propagate in the rpc envelope, events that share a Trace form one journey
// regardless of which node's ring they came from.
func Collect(sets ...[]Event) []Event {
	var total int
	for _, s := range sets {
		total += len(s)
	}
	out := make([]Event, 0, total)
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

// Shift translates a remote node's events into the collector's clock by
// adding deltaNs (the peer clock offset measured at the RPC ping/pong
// midpoint) to every timestamp, in place. Call before Collect when stitching
// rings from nodes whose clocks may disagree.
func Shift(evs []Event, deltaNs int64) {
	if deltaNs == 0 {
		return
	}
	for i := range evs {
		evs[i].TimeNs += deltaNs
	}
}

// FilterTrace returns the events belonging to one journey.
func FilterTrace(evs []Event, traceID uint64) []Event {
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Trace == traceID {
			out = append(out, ev)
		}
	}
	return out
}

// --- global (process-level) tracer ---

// Process-wide subsystems that have no node handle (the wire codec's gob
// fallback, the TCP dialer) emit through a global tracer installed by the
// process owner (amberd, or a test).
var global atomic.Pointer[Tracer]

// SetGlobal installs the process-level tracer (nil uninstalls).
func SetGlobal(t *Tracer) { global.Store(t) }

// GlobalOn reports whether a process-level tracer is installed and enabled.
// Callers must check this before building an Event for GlobalEmit, so the
// disabled path stays allocation-free.
func GlobalOn() bool { return global.Load().On() }

// GlobalEmit records an event on the process-level tracer, if enabled.
func GlobalEmit(ev Event) { global.Load().Emit(ev) }
