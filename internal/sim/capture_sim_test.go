package sim

// Virtual-time model of the flight recorder's anomaly-capture cooldown: a
// burst of anomalies (the realistic arrival pattern — one dead node fails
// every in-flight call at once) must yield exactly one capture per cooldown
// window, with the rest counted as suppressed. Virtual time makes the
// windowing exact: no sleeps, no flakes.

import (
	"testing"
	"time"

	"amber/internal/trace"
)

func TestCaptureCooldownUnderAnomalyBurst(t *testing.T) {
	k := New()
	const cooldown = 100 * time.Millisecond

	collects := 0
	c := trace.NewCapture(0, cooldown, func() ([]trace.Event, []string) {
		collects++
		return []trace.Event{{Kind: trace.KPeerDown}}, nil
	})
	c.SetNow(func() int64 { return int64(k.Now()) })
	c.SetSynchronous(true)

	// Three spike waves, one cooldown window apart; each wave is 20
	// near-simultaneous anomalies (1ms apart — well inside the window).
	accepted := 0
	k.Go("anomaly-source", func(p *Proc) {
		for wave := 0; wave < 3; wave++ {
			for i := 0; i < 20; i++ {
				if c.Trigger(trace.TrigNodeDown, "burst") {
					accepted++
				}
				p.Sleep(time.Millisecond)
			}
			// Finish out the window so the next wave starts fresh.
			p.Sleep(cooldown)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}

	if accepted != 3 || collects != 3 {
		t.Fatalf("accepted=%d collects=%d, want one capture per wave (3)", accepted, collects)
	}
	st := c.Stats()
	if st["capture_triggers"] != 60 {
		t.Fatalf("triggers = %d, want 60", st["capture_triggers"])
	}
	if st["capture_suppressed"] != 57 {
		t.Fatalf("suppressed = %d, want 57", st["capture_suppressed"])
	}
	if st["captures"] != 3 {
		t.Fatalf("captures = %d, want 3", st["captures"])
	}
	dumps := c.Dumps()
	if len(dumps) != 3 {
		t.Fatalf("retained dumps = %d, want 3", len(dumps))
	}
	// Dump timestamps are exactly one wave apart in virtual time.
	wave := int64(20*time.Millisecond + cooldown)
	for i, d := range dumps {
		if want := int64(i) * wave; d.TimeNs != want {
			t.Fatalf("dump %d at %dns, want %dns", i, d.TimeNs, want)
		}
	}
}

func TestCaptureRecoversAfterQuietPeriod(t *testing.T) {
	k := New()
	const cooldown = 50 * time.Millisecond
	c := trace.NewCapture(0, cooldown, func() ([]trace.Event, []string) { return nil, nil })
	c.SetNow(func() int64 { return int64(k.Now()) })
	c.SetSynchronous(true)

	var results []bool
	k.Go("sparse-source", func(p *Proc) {
		results = append(results, c.Trigger(trace.TrigDeadlineMiss, "a")) // t=0: accepted
		p.Sleep(10 * time.Millisecond)
		results = append(results, c.Trigger(trace.TrigDeadlineMiss, "b")) // inside window: suppressed
		p.Sleep(cooldown)                                                 // long quiet period
		results = append(results, c.Trigger(trace.TrigHeatStorm, "c"))    // accepted again
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("trigger pattern = %v, want %v", results, want)
		}
	}
	if last, ok := c.Last(); !ok || last.Reason != trace.TrigHeatStorm {
		t.Fatalf("last dump = %+v, want heat-storm", last)
	}
}
