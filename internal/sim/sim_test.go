package sim

import (
	"fmt"
	"testing"
	"time"
)

const ms = time.Millisecond

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(250 * ms)
		woke = p.Now()
	})
	start := time.Now()
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if woke != 250*ms || end != 250*ms {
		t.Fatalf("woke=%v end=%v", woke, end)
	}
	// Virtual: must complete in real microseconds, not 250ms.
	if real := time.Since(start); real > 100*ms {
		t.Fatalf("simulation took %v of real time", real)
	}
}

func TestParallelSleepsOverlap(t *testing.T) {
	k := New()
	for i := 0; i < 10; i++ {
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) { p.Sleep(100 * ms) })
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 100*ms {
		t.Fatalf("end = %v, want 100ms (sleeps are concurrent)", end)
	}
}

func TestNegativeSleepClamped(t *testing.T) {
	k := New()
	k.Go("p", func(p *Proc) { p.Sleep(-5 * ms) })
	if end, err := k.Run(); err != nil || end != 0 {
		t.Fatalf("end=%v err=%v", end, err)
	}
}

func TestResourceSerializes(t *testing.T) {
	k := New()
	cpu := k.NewResource(2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		k.Go(fmt.Sprintf("t%d", i), func(p *Proc) {
			p.Use(cpu, 10*ms)
			finish = append(finish, p.Now())
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 tasks × 10ms on 2 servers = 20ms.
	if end != 20*ms {
		t.Fatalf("end = %v, want 20ms", end)
	}
	if finish[0] != 10*ms || finish[3] != 20*ms {
		t.Fatalf("finish times %v", finish)
	}
	if cpu.BusyTime() != 40*ms {
		t.Fatalf("busy = %v, want 40ms", cpu.BusyTime())
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func(p *Proc) {
			p.Acquire(r)
			p.Sleep(ms)
			order = append(order, name)
			p.Release(r)
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestEventBroadcast(t *testing.T) {
	k := New()
	ev := k.NewEvent()
	var woke []time.Duration
	for i := 0; i < 3; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, p.Now())
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(30 * ms)
		ev.Fire()
		ev.Fire() // idempotent
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters", len(woke))
	}
	for _, w := range woke {
		if w != 30*ms {
			t.Fatalf("waiter woke at %v", w)
		}
	}
	// Waiting on a fired event returns immediately.
	k2 := New()
	ev2 := k2.NewEvent()
	ev2.Fire()
	k2.Go("late", func(p *Proc) {
		p.Wait(ev2)
		if p.Now() != 0 {
			t.Error("late waiter delayed")
		}
	})
	if _, err := k2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierEpochs(t *testing.T) {
	k := New()
	b := k.NewBarrier(3)
	var passes []time.Duration
	for i := 0; i < 3; i++ {
		delay := time.Duration(i+1) * 10 * ms
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for epoch := 0; epoch < 2; epoch++ {
				p.Sleep(delay)
				p.Arrive(b)
				passes = append(passes, p.Now())
			}
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First epoch completes when the slowest (30ms) arrives; second at 60ms.
	if len(passes) != 6 {
		t.Fatalf("%d passes", len(passes))
	}
	for i, at := range passes {
		want := 30 * ms
		if i >= 3 {
			want = 60 * ms
		}
		if at != want {
			t.Fatalf("pass %d at %v, want %v", i, at, want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New()
	ev := k.NewEvent()
	k.Go("stuck", func(p *Proc) { p.Wait(ev) })
	if _, err := k.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, []string) {
		k := New()
		cpu := k.NewResource(2)
		link := k.NewResource(1)
		var log []string
		for i := 0; i < 6; i++ {
			i := i
			k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Use(cpu, time.Duration(3+i%3)*ms)
				p.Use(link, 2*ms)
				p.Sleep(4 * ms)
				log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
			})
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, log
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || fmt.Sprint(l1) != fmt.Sprint(l2) {
		t.Fatalf("nondeterministic:\n%v %v\n%v %v", e1, l1, e2, l2)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childDone time.Duration
	k.Go("parent", func(p *Proc) {
		p.Sleep(5 * ms)
		done := k.NewEvent()
		k.Go("child", func(c *Proc) {
			c.Sleep(7 * ms)
			childDone = c.Now()
			done.Fire()
		})
		p.Wait(done)
		if p.Now() != 12*ms {
			t.Errorf("parent resumed at %v", p.Now())
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childDone != 12*ms {
		t.Fatalf("child done at %v", childDone)
	}
}

func TestUseComposition(t *testing.T) {
	// A pipeline: cpu then link; verify the critical path.
	k := New()
	cpu := k.NewResource(1)
	link := k.NewResource(1)
	for i := 0; i < 2; i++ {
		k.Go(fmt.Sprintf("m%d", i), func(p *Proc) {
			p.Use(cpu, 10*ms)
			p.Use(link, 5*ms)
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// m0: cpu 0-10, link 10-15. m1: cpu 10-20, link 20-25.
	if end != 25*ms {
		t.Fatalf("end = %v, want 25ms", end)
	}
}
