// Package sim is a deterministic process-oriented discrete-event simulator,
// the substrate this reproduction substitutes for the paper's testbed of
// eight 4-CPU Fireflies (see DESIGN.md §2): the host running this code has
// too few CPUs to *measure* 32-way speedup, so the speedup experiments of
// Figures 2 and 3 are *simulated* under a cost model calibrated from
// Table 1.
//
// The kernel runs simulated processes (goroutines) one at a time, handing
// control back and forth through channels, so virtual time advances
// deterministically: identical programs produce identical timings on any
// host. Facilities: Sleep, broadcast Events, m-server Resources (CPUs,
// links), and counters.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel owns virtual time and the event queue. All simulation activity —
// spawning processes, firing events — must happen either before Run or from
// within a simulated process; the kernel is not thread-safe by design
// (single-runnable-process is what makes it deterministic).
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	proceed chan struct{}
	// alive counts spawned-but-unfinished processes; blocked ones with no
	// pending events indicate a model deadlock.
	alive   int
	blocked int
}

// New creates a kernel at time zero.
func New() *Kernel {
	return &Kernel{proceed: make(chan struct{})}
}

// Now returns current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Proc is a simulated process's handle, confined to its own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the process name (debugging).
func (p *Proc) Name() string { return p.name }

// Now returns current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Kernel returns the owning kernel (to spawn children).
func (p *Proc) Kernel() *Kernel { return p.k }

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (k *Kernel) push(at time.Duration, p *Proc) {
	k.seq++
	heap.Push(&k.queue, event{at: at, seq: k.seq, proc: p})
}

// Go spawns a process that starts at the current virtual time.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.alive++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		k.alive--
		k.proceed <- struct{}{}
	}()
	k.push(k.now, p)
	return p
}

// block yields control to the kernel until the process is resumed.
func (p *Proc) block() {
	p.k.blocked++
	p.k.proceed <- struct{}{}
	<-p.resume
	p.k.blocked--
}

// wake schedules p to resume at virtual time at.
func (k *Kernel) wake(p *Proc, at time.Duration) { k.push(at, p) }

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.push(p.k.now+d, p)
	p.block()
}

// Run drives the simulation until no events remain, returning the final
// virtual time. It returns an error if processes remain blocked with no
// pending events (a model deadlock).
func (k *Kernel) Run() (time.Duration, error) {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(event)
		if e.at < k.now {
			return k.now, fmt.Errorf("sim: time ran backwards (%v < %v)", e.at, k.now)
		}
		k.now = e.at
		e.proc.resume <- struct{}{}
		<-k.proceed
	}
	if k.alive > 0 {
		return k.now, fmt.Errorf("sim: deadlock: %d processes blocked with empty event queue", k.alive)
	}
	return k.now, nil
}

// --- events ---

// Event is a broadcast one-shot flag in virtual time.
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func (k *Kernel) NewEvent() *Event { return &Event{k: k} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire triggers the event at the current virtual time, waking all waiters.
// Idempotent.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, w := range e.waiters {
		e.k.wake(w, e.k.now)
	}
	e.waiters = nil
}

// Wait blocks the process until the event fires (returns immediately if it
// already has).
func (p *Proc) Wait(e *Event) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.block()
}

// --- resources ---

// Resource is an m-server resource (CPUs of a node, a network link). FIFO
// grant order keeps the simulation deterministic.
type Resource struct {
	k     *Kernel
	cap   int
	inUse int
	waitq []*Proc
	// busy accumulates capacity-occupied time for utilization reports.
	busy     time.Duration
	lastTick time.Duration
}

// NewResource creates a resource with the given capacity (min 1).
func (k *Kernel) NewResource(capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{k: k, cap: capacity}
}

// Cap returns the capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns current occupancy.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) tick() {
	r.busy += time.Duration(r.inUse) * (r.k.now - r.lastTick)
	r.lastTick = r.k.now
}

// BusyTime returns capacity-seconds consumed so far (for utilization).
func (r *Resource) BusyTime() time.Duration {
	r.tick()
	return r.busy
}

// Acquire blocks until one unit of the resource is granted.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.cap {
		r.tick()
		r.inUse++
		return
	}
	r.waitq = append(r.waitq, p)
	p.block()
	// Ownership was transferred by Release; nothing to do.
}

// Release returns one unit, waking the first waiter (which inherits the
// unit).
func (p *Proc) Release(r *Resource) {
	if len(r.waitq) > 0 {
		next := r.waitq[0]
		r.waitq = r.waitq[1:]
		// Occupancy is inherited: inUse stays constant.
		r.k.wake(next, r.k.now)
		return
	}
	r.tick()
	r.inUse--
}

// Use acquires the resource, sleeps d, and releases: the common
// "occupy a CPU for d" idiom.
func (p *Proc) Use(r *Resource, d time.Duration) {
	p.Acquire(r)
	p.Sleep(d)
	p.Release(r)
}

// --- barrier ---

// Barrier synchronizes n processes in virtual time, reusable across epochs.
type Barrier struct {
	k       *Kernel
	parties int
	count   int
	ev      *Event
}

// NewBarrier creates a barrier for n parties.
func (k *Kernel) NewBarrier(n int) *Barrier {
	return &Barrier{k: k, parties: n, ev: k.NewEvent()}
}

// Arrive blocks until all parties of the current epoch have arrived.
func (p *Proc) Arrive(b *Barrier) {
	b.count++
	if b.count >= b.parties {
		b.count = 0
		ev := b.ev
		b.ev = b.k.NewEvent()
		ev.Fire()
		return
	}
	p.Wait(b.ev)
}
