package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Deterministic failure scenarios. These model the runtime's recovery
// machinery — timeout, probe, classification, capped backoff, idempotency
// tokens — on the virtual-time kernel, so the cost of a crash window is a
// number the scheduler tests can assert exactly, and the same scenario
// replays to the identical event order every run (the property the seeded
// fault injector gives the real cluster).

// simPeer is a fail-stop node model: down means requests and replies vanish;
// memory (the dedup window and executed counts) survives, as it does for the
// in-process injector.
type simPeer struct {
	up       bool
	executed map[int]int  // idempotency token -> execution count
	dedup    map[int]bool // completed tokens (replayable)
}

func newSimPeer() *simPeer {
	return &simPeer{up: true, executed: make(map[int]int), dedup: make(map[int]bool)}
}

// invokeModel drives one invocation with retries against peer from p,
// mirroring the CallWith state machine: request transit, execute-or-lose,
// reply transit, timeout + probe classification, capped exponential backoff,
// same token across attempts. Returns the number of attempts used, or 0 if
// the attempt budget ran out.
func invokeModel(p *Proc, peer *simPeer, token int, log *[]string) int {
	const (
		latency     = 2 * ms
		timeout     = 20 * ms
		maxAttempts = 20
		maxBackoff  = 40 * ms
	)
	backoff := 5 * ms
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		p.Sleep(latency) // request transit
		delivered := peer.up
		if delivered && !peer.dedup[token] {
			peer.executed[token]++ // fresh execution
			peer.dedup[token] = true
		}
		if delivered {
			p.Sleep(latency) // reply transit
			if peer.up {
				*log = append(*log, fmt.Sprintf("%s ok attempt=%d @%v", p.Name(), attempt, p.Now()))
				return attempt
			}
		}
		// No reply: wait out the rest of the timeout, then probe to classify.
		p.Sleep(timeout - latency)
		p.Sleep(2 * latency) // probe round-trip (down peers just cost the timeout either way)
		p.Sleep(backoff)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	return 0
}

// crashInvokeScenario: four workers invoke a peer that is down for a window
// that opens mid-workload. Every invocation must eventually succeed after the
// restart, executing exactly once.
func crashInvokeScenario(t *testing.T) (time.Duration, []string) {
	t.Helper()
	k := New()
	peer := newSimPeer()
	var log []string
	k.Go("controller", func(p *Proc) {
		p.Sleep(15 * ms)
		peer.up = false
		log = append(log, fmt.Sprintf("crash @%v", p.Now()))
		p.Sleep(105 * ms)
		peer.up = true
		log = append(log, fmt.Sprintf("restart @%v", p.Now()))
	})
	for w := 0; w < 4; w++ {
		w := w
		k.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for op := 0; op < 3; op++ {
				p.Sleep(time.Duration(w) * ms) // stagger
				token := w*10 + op
				if invokeModel(p, peer, token, &log) == 0 {
					t.Errorf("%s token %d exhausted its attempts", p.Name(), token)
				}
			}
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	for token, n := range peer.executed {
		if n != 1 {
			t.Errorf("token %d executed %d times, want exactly 1", token, n)
		}
	}
	if len(peer.executed) != 12 {
		t.Errorf("%d tokens executed, want 12", len(peer.executed))
	}
	return end, log
}

func TestSimCrashDuringInvoke(t *testing.T) {
	end, log := crashInvokeScenario(t)
	// The crash window (15ms..120ms) must actually have been felt: work
	// finishes only after the restart, and at least one retry happened.
	if end <= 120*ms {
		t.Fatalf("workload finished at %v, inside the crash window", end)
	}
	retried := false
	for _, l := range log {
		if strings.Contains(l, "ok attempt=") && !strings.Contains(l, "attempt=1 ") {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("no invocation needed a retry:\n%s", strings.Join(log, "\n"))
	}
	// Replay: the same scenario produces the identical schedule.
	end2, log2 := crashInvokeScenario(t)
	if end != end2 || fmt.Sprint(log) != fmt.Sprint(log2) {
		t.Fatalf("nondeterministic failure scenario:\nrun1 end=%v\n%s\nrun2 end=%v\n%s",
			end, strings.Join(log, "\n"), end2, strings.Join(log2, "\n"))
	}
}

// crashMoveScenario: an object move copies state in chunks; the destination
// crashes mid-copy, the move aborts (object stays at the source, consistent),
// and a retry after the restart completes it.
func crashMoveScenario(t *testing.T) (time.Duration, []string) {
	t.Helper()
	k := New()
	dst := newSimPeer()
	restarted := k.NewEvent()
	var log []string
	k.Go("controller", func(p *Proc) {
		p.Sleep(25 * ms)
		dst.up = false
		log = append(log, fmt.Sprintf("crash @%v", p.Now()))
		p.Sleep(50 * ms)
		dst.up = true
		log = append(log, fmt.Sprintf("restart @%v", p.Now()))
		restarted.Fire()
	})
	k.Go("mover", func(p *Proc) {
		p.Sleep(10 * ms) // workload leading up to the move
		location := "src"
		for attempt := 1; ; attempt++ {
			aborted := false
			for chunk := 0; chunk < 10; chunk++ {
				p.Sleep(3 * ms) // one chunk of copy transit
				if !dst.up {
					aborted = true
					break
				}
			}
			if !aborted {
				location = "dst"
				log = append(log, fmt.Sprintf("moved attempt=%d @%v", attempt, p.Now()))
				break
			}
			log = append(log, fmt.Sprintf("move aborted attempt=%d @%v location=%s", attempt, p.Now(), location))
			p.Wait(restarted) // back off until the destination is back
		}
		if location != "dst" {
			t.Errorf("object ended at %s", location)
		}
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return end, log
}

func TestSimCrashDuringMove(t *testing.T) {
	end, log := crashMoveScenario(t)
	joined := strings.Join(log, "\n")
	if !strings.Contains(joined, "move aborted attempt=1") ||
		!strings.Contains(joined, "location=src") {
		t.Fatalf("move did not abort cleanly at the source:\n%s", joined)
	}
	if !strings.Contains(joined, "moved attempt=2") {
		t.Fatalf("move never completed after restart:\n%s", joined)
	}
	// Exact virtual-time accounting: crash at 25ms interrupts the copy that
	// started at 10ms on its 6th chunk (t=28ms); the retry starts at the 75ms
	// restart and needs 10 chunks × 3ms = 105ms total.
	if end != 105*ms {
		t.Fatalf("end = %v, want 105ms", end)
	}
	end2, log2 := crashMoveScenario(t)
	if end != end2 || fmt.Sprint(log) != fmt.Sprint(log2) {
		t.Fatalf("nondeterministic move scenario:\nrun1 %v\n%s\nrun2 %v\n%s",
			end, joined, end2, strings.Join(log2, "\n"))
	}
}
