package perf

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// PaperGridRows and PaperGridCols are the Figure 2 problem size (§6:
// "a grid size of 122 by 842 points").
const (
	PaperGridRows = 122
	PaperGridCols = 842
)

// Figure2Configs returns the configuration sweep of Figure 2: node ×
// processor combinations on the 122×842 grid, 8 sections (6 for the 3- and
// 6-node runs, as in the paper), plus the non-overlapped 8N×4P variant.
func Figure2Configs(iters int) []SORConfig {
	mk := func(nodes, procs, sections int, overlap bool) SORConfig {
		return SORConfig{
			Nodes: nodes, ProcsPerNode: procs, Sections: sections,
			Rows: PaperGridRows, Cols: PaperGridCols,
			Iters: iters, Overlap: overlap, Model: CVAX1989,
		}
	}
	return []SORConfig{
		mk(1, 1, 8, true),
		mk(1, 2, 8, true),
		mk(1, 4, 8, true),
		mk(2, 1, 8, true),
		mk(2, 2, 8, true),
		mk(2, 4, 8, true),
		mk(3, 4, 6, true),
		mk(4, 1, 8, true),
		mk(4, 2, 8, true),
		mk(4, 4, 8, true),
		mk(6, 4, 6, true),
		mk(8, 2, 8, true),
		mk(8, 4, 8, true),
		mk(8, 4, 8, false), // the second 8Nx4P point: no overlap
	}
}

// RunFigure2 simulates every Figure 2 point.
func RunFigure2(iters int) ([]SORPoint, error) {
	if iters <= 0 {
		iters = 25
	}
	var out []SORPoint
	for _, cfg := range Figure2Configs(iters) {
		pt, err := SimulateSOR(cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: %dNx%dP: %w", cfg.Nodes, cfg.ProcsPerNode, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// Figure3Configs returns the problem-size sweep of Figure 3: the 4N×4P
// configuration over grids from a few thousand points to several times the
// Figure 2 grid (whose point is marked "X" in the paper).
func Figure3Configs(iters int) []SORConfig {
	var out []SORConfig
	for _, f := range []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4} {
		scale := math.Sqrt(f)
		rows := int(math.Round(PaperGridRows * scale))
		cols := int(math.Round(PaperGridCols * scale))
		if rows < 12 {
			rows = 12
		}
		if cols < 12 {
			cols = 12
		}
		out = append(out, SORConfig{
			Nodes: 4, ProcsPerNode: 4, Sections: 8,
			Rows: rows, Cols: cols, Iters: iters, Overlap: true, Model: CVAX1989,
		})
	}
	return out
}

// RunFigure3 simulates every Figure 3 point.
func RunFigure3(iters int) ([]SORPoint, error) {
	if iters <= 0 {
		iters = 25
	}
	var out []SORPoint
	for _, cfg := range Figure3Configs(iters) {
		pt, err := SimulateSOR(cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: %dx%d: %w", cfg.Rows, cfg.Cols, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// --- text rendering ---

func msf(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }

// FormatTable1 renders the Table 1 reproduction.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Latency of Amber Operations (paper vs this runtime under the 1989 profile)\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %8s\n", "operation", "paper (ms)", "measured (ms)", "ratio")
	for _, r := range rows {
		ratio := float64(r.Measured) / float64(r.Paper)
		fmt.Fprintf(&b, "%-24s %14s %14s %7.2fx\n", r.Operation, msf(r.Paper), msf(r.Measured), ratio)
	}
	return b.String()
}

// FormatSOR renders Figure 2/3 points as the series the paper plots.
func FormatSOR(title string, pts []SORPoint, showSize bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if showSize {
		fmt.Fprintf(&b, "%-14s %10s %12s %12s %9s %8s\n",
			"config", "points", "seq (s)", "par (s)", "speedup", "msgs")
	} else {
		fmt.Fprintf(&b, "%-22s %12s %12s %9s %9s %8s %7s\n",
			"config", "seq (s)", "par (s)", "speedup", "ideal", "msgs", "util")
	}
	for _, p := range pts {
		if showSize {
			fmt.Fprintf(&b, "%-14s %10d %12.3f %12.3f %9.2f %8d\n",
				p.Label(),
				(p.Config.Rows-2)*(p.Config.Cols-2),
				p.Seq.Seconds(), p.Parallel.Seconds(), p.Speedup, p.Messages)
		} else {
			ideal := p.Config.Nodes * p.Config.ProcsPerNode
			fmt.Fprintf(&b, "%-22s %12.3f %12.3f %9.2f %9d %8d %6.0f%%\n",
				p.Label(), p.Seq.Seconds(), p.Parallel.Seconds(), p.Speedup, ideal, p.Messages,
				100*p.Utilization)
		}
	}
	return b.String()
}

// FormatCompare renders a §4 comparison.
func FormatCompare(title string, rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-44s %8s %10s %12s %14s\n", "system", "msgs", "KB", "model (ms)", "per unit (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %8d %10.1f %12s %14s   # %s\n",
			r.System, r.Msgs, float64(r.Bytes)/1024, msf(r.Model), msf(r.PerUnit), r.Footnote)
	}
	return b.String()
}

// FormatChains renders the forwarding-chain ablation.
func FormatChains(rows []ChainRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8: forwarding chains and chain caching (§3.3)\n")
	fmt.Fprintf(&b, "%6s %10s %8s %10s %10s %8s %9s %10s\n",
		"hops", "1st msgs", "1st fwd", "1st (ms)", "2nd msgs", "2nd fwd", "hint hit", "2nd (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10d %8d %10s %10d %8d %9d %10s\n",
			r.Hops, r.FirstMsgs, r.FirstFwd, msf(r.FirstTime),
			r.SecondMsgs, r.SecondFwd, r.HintHits, msf(r.SecondTime))
	}
	return b.String()
}

// FormatMobility renders the attachment/immutability ablation.
func FormatMobility(rows []MobilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E9: attachment and immutable replication (§2.3)\n")
	fmt.Fprintf(&b, "%-48s %8s %10s %12s\n", "variant", "msgs", "KB", "model (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %8d %10.1f %12s   # %s\n",
			r.Variant, r.Msgs, float64(r.Bytes)/1024, msf(r.Model), r.Note)
	}
	return b.String()
}
