package perf

import (
	"fmt"
	"time"

	"amber/internal/core"
	"amber/internal/gaddr"
)

// ChainRow is one line of the forwarding-chain ablation (E8, §3.3): an
// object k hops down a forwarding chain, referenced twice from the origin.
type ChainRow struct {
	Hops int
	// FirstMsgs is the messages for the first reference (walks the chain).
	FirstMsgs int64
	// SecondMsgs is the messages for the second (served by the cache).
	SecondMsgs int64
	// FirstFwd/SecondFwd count forwarding hops actually taken inside the
	// cluster during each reference; the second should be zero once caches
	// are warm.
	FirstFwd  int64
	SecondFwd int64
	// HintHits counts location-hint cache hits during the second reference
	// (the origin never hosted the object, so its knowledge lives in the
	// hint cache rather than a descriptor).
	HintHits   int64
	FirstTime  time.Duration
	SecondTime time.Duration
}

// sumNodeStat totals one counter across every node of the cluster.
func sumNodeStat(cl *core.Cluster, name string) int64 {
	var total int64
	for i := 0; i < cl.NumNodes(); i++ {
		total += cl.Node(i).Stats().Value(name)
	}
	return total
}

// chainObj is a trivial target.
type chainObj struct{ N int }

// Touch is a minimal operation.
func (c *chainObj) Touch() int { c.N++; return c.N }

// ForwardingChains measures E8: the cost of locating an object through
// chains of increasing length, and the effect of chain caching (the second
// reference finds the object's last known location cached, §3.3).
func ForwardingChains(maxHops int) ([]ChainRow, error) {
	if maxHops < 1 {
		maxHops = 1
	}
	var rows []ChainRow
	for hops := 1; hops <= maxHops; hops++ {
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{
			Nodes: hops + 2, ProcsPerNode: 1, Registry: reg,
		})
		if err != nil {
			return nil, err
		}
		if err := cl.Register(&chainObj{}); err != nil {
			return nil, err
		}
		// Build a chain of length `hops`: the object starts on node 1 and
		// each move is instructed *by the node it is leaving*, so only that
		// node's descriptor is updated and the stale chain survives:
		// node 1 → node 2 → ... → node hops+1.
		ref, err := cl.Node(1).Root().New(&chainObj{})
		if err != nil {
			return nil, err
		}
		for h := 0; h < hops; h++ {
			mover := cl.Node(1 + h).Root()
			if err := mover.MoveTo(ref, gaddr.NodeID(2+h)); err != nil {
				return nil, err
			}
		}
		// Reference from node 0, which has never heard of the object: home
		// fallback to node 1, then the chain.
		ctx := cl.Node(0).Root()
		before := cl.NetStats().Value("msgs_sent")
		fwdBefore := sumNodeStat(cl, "forwards")
		if _, err := ctx.Invoke(ref, "Touch"); err != nil {
			return nil, err
		}
		// The chain-cache updates are asynchronous oneways; wait for them
		// to land so the first-reference bill is complete.
		waitForQuiesce(cl)
		first := cl.NetStats().Value("msgs_sent") - before
		firstFwd := sumNodeStat(cl, "forwards") - fwdBefore

		before = cl.NetStats().Value("msgs_sent")
		fwdBefore = sumNodeStat(cl, "forwards")
		hitsBefore := sumNodeStat(cl, "hint_hits")
		if _, err := ctx.Invoke(ref, "Touch"); err != nil {
			return nil, err
		}
		second := cl.NetStats().Value("msgs_sent") - before
		secondFwd := sumNodeStat(cl, "forwards") - fwdBefore
		hits := sumNodeStat(cl, "hint_hits") - hitsBefore
		cl.Close()

		rows = append(rows, ChainRow{
			Hops:       hops,
			FirstMsgs:  first,
			SecondMsgs: second,
			FirstFwd:   firstFwd,
			SecondFwd:  secondFwd,
			HintHits:   hits,
			FirstTime:  modelTime(CVAX1989, first, first*200),
			SecondTime: modelTime(CVAX1989, second, second*200),
		})
	}
	return rows, nil
}

// waitForQuiesce waits briefly until the fabric's send counter stops moving
// (oneway cache updates are asynchronous).
func waitForQuiesce(cl *core.Cluster) {
	last := cl.NetStats().Value("msgs_sent")
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		cur := cl.NetStats().Value("msgs_sent")
		if cur == last {
			return
		}
		last = cur
	}
}

// MobilityRow is one line of the attachment/immutability ablation (E9).
type MobilityRow struct {
	Variant string
	Msgs    int64
	Bytes   int64
	Model   time.Duration
	Note    string
}

// payload is a small movable object.
type payload struct{ Data []byte }

// Peek reads one byte.
func (p *payload) Peek() byte {
	if len(p.Data) == 0 {
		return 0
	}
	return p.Data[0]
}

// MobilityAblation measures E9, two of §2.3's design points:
//
//   - Attachment: moving k related objects as one attached component versus
//     k independent moves.
//   - Immutability: r remote reads of a shared table versus marking it
//     immutable and replicating once.
func MobilityAblation(k, r int) ([]MobilityRow, error) {
	if k < 2 {
		k = 2
	}
	if r < 1 {
		r = 1
	}
	var rows []MobilityRow

	build := func() (*core.Cluster, []core.Ref, error) {
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{Nodes: 2, ProcsPerNode: 1, Registry: reg})
		if err != nil {
			return nil, nil, err
		}
		if err := cl.Register(&payload{}); err != nil {
			return nil, nil, err
		}
		refs := make([]core.Ref, k)
		for i := range refs {
			refs[i], err = cl.Node(0).Root().New(&payload{Data: make([]byte, 512)})
			if err != nil {
				return nil, nil, err
			}
		}
		return cl, refs, nil
	}

	// k independent moves.
	{
		cl, refs, err := build()
		if err != nil {
			return nil, err
		}
		ctx := cl.Node(0).Root()
		before, beforeB := cl.NetStats().Value("msgs_sent"), cl.NetStats().Value("bytes_sent")
		for _, ref := range refs {
			if err := ctx.MoveTo(ref, 1); err != nil {
				return nil, err
			}
		}
		m, b := cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB
		rows = append(rows, MobilityRow{
			Variant: fmt.Sprintf("%d unattached objects, %d moves", k, k),
			Msgs:    m, Bytes: b, Model: modelTime(CVAX1989, m, b),
			Note: "one install round trip per object",
		})
		cl.Close()
	}

	// One move of an attached component.
	{
		cl, refs, err := build()
		if err != nil {
			return nil, err
		}
		ctx := cl.Node(0).Root()
		for i := 1; i < len(refs); i++ {
			if err := ctx.Attach(refs[i], refs[0]); err != nil {
				return nil, err
			}
		}
		before, beforeB := cl.NetStats().Value("msgs_sent"), cl.NetStats().Value("bytes_sent")
		if err := ctx.MoveTo(refs[0], 1); err != nil {
			return nil, err
		}
		m, b := cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB
		rows = append(rows, MobilityRow{
			Variant: fmt.Sprintf("%d attached objects, 1 move", k),
			Msgs:    m, Bytes: b, Model: modelTime(CVAX1989, m, b),
			Note: "whole component ships in one transfer (§2.3)",
		})
		cl.Close()
	}

	// r remote reads of a mutable object.
	{
		cl, refs, err := build()
		if err != nil {
			return nil, err
		}
		ctx1 := cl.Node(1).Root()
		before, beforeB := cl.NetStats().Value("msgs_sent"), cl.NetStats().Value("bytes_sent")
		for i := 0; i < r; i++ {
			if _, err := ctx1.Invoke(refs[0], "Peek"); err != nil {
				return nil, err
			}
		}
		m, b := cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB
		rows = append(rows, MobilityRow{
			Variant: fmt.Sprintf("mutable object, %d remote reads", r),
			Msgs:    m, Bytes: b, Model: modelTime(CVAX1989, m, b),
			Note: "every read is a remote invocation",
		})
		cl.Close()
	}

	// Immutable: replicate once, then read locally.
	{
		cl, refs, err := build()
		if err != nil {
			return nil, err
		}
		ctx0 := cl.Node(0).Root()
		ctx1 := cl.Node(1).Root()
		before, beforeB := cl.NetStats().Value("msgs_sent"), cl.NetStats().Value("bytes_sent")
		if err := ctx0.SetImmutable(refs[0]); err != nil {
			return nil, err
		}
		if err := ctx1.MoveTo(refs[0], 1); err != nil { // copies (§2.3)
			return nil, err
		}
		for i := 0; i < r; i++ {
			if _, err := ctx1.Invoke(refs[0], "Peek"); err != nil {
				return nil, err
			}
		}
		m, b := cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB
		rows = append(rows, MobilityRow{
			Variant: fmt.Sprintf("immutable object, 1 replication + %d local reads", r),
			Msgs:    m, Bytes: b, Model: modelTime(CVAX1989, m, b),
			Note: "MoveTo copies; replica serves all reads locally",
		})
		cl.Close()
	}
	return rows, nil
}
