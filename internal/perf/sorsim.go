package perf

import (
	"fmt"
	"time"

	"amber/internal/sim"
)

// SORConfig describes one point of Figure 2 or 3: a grid, a machine
// configuration, and the program variant.
type SORConfig struct {
	Nodes        int
	ProcsPerNode int
	// Sections partitions the grid (0 = one per node). The paper used 8
	// sections in most Figure 2 runs and 6 for the 3- and 6-node runs.
	Sections int
	Rows     int
	Cols     int
	// Iters fixes the iteration count: speedup is a ratio of per-iteration
	// times, so convergence detail is irrelevant to the figure.
	Iters int
	// Overlap selects the communication/computation overlap variant.
	Overlap bool
	Model   Model
}

// SORPoint is one measured point: modelled parallel time, modelled
// sequential time, their ratio, and processor utilization.
type SORPoint struct {
	Config   SORConfig
	Parallel time.Duration
	Seq      time.Duration
	Speedup  float64
	Messages int64
	// Utilization is busy processor-time over available processor-time.
	Utilization float64
}

// Label renders the paper's configuration naming, e.g. "4Nx2P".
func (p SORPoint) Label() string {
	s := fmt.Sprintf("%dNx%dP", p.Config.Nodes, p.Config.ProcsPerNode)
	if !p.Config.Overlap {
		s += " (no overlap)"
	}
	return s
}

// SimulateSOR runs the Red/Black SOR performance model on the DES testbed
// and returns the modelled times. The program structure mirrors §6 and
// Figure 1: one controller process per section; compute fans out over the
// node's processors; edge rows of each color are pushed to the neighbours
// (overlapping interior compute in the overlap variant); each half-iteration
// waits for the neighbours' pushed edges of the color it needs; and every
// iteration ends with a convergence reduction against a master on node 0.
func SimulateSOR(cfg SORConfig) (SORPoint, error) {
	if cfg.Nodes < 1 || cfg.ProcsPerNode < 1 || cfg.Rows < 3 || cfg.Cols < 3 || cfg.Iters < 1 {
		return SORPoint{}, fmt.Errorf("perf: bad SOR config %+v", cfg)
	}
	S := cfg.Sections
	if S <= 0 {
		S = cfg.Nodes
	}
	interior := cfg.Rows - 2
	if S > interior {
		return SORPoint{}, fmt.Errorf("perf: %d sections over %d interior rows", S, interior)
	}
	m := cfg.Model

	k := sim.New()
	cpus := make([]*sim.Resource, cfg.Nodes)
	links := make([]*sim.Resource, cfg.Nodes)
	for i := range cpus {
		cpus[i] = k.NewResource(cfg.ProcsPerNode)
		links[i] = k.NewResource(1)
	}
	var messages int64

	// message models one push/request from node src to node dst: sender
	// CPU, wire occupancy, latency, receiver CPU.
	message := func(p *sim.Proc, src, dst, bytes int) {
		messages++
		p.Use(cpus[src], m.MsgCPU)
		p.Use(links[src], m.TransmitTime(bytes))
		p.Sleep(m.MsgLatency)
		p.Use(cpus[dst], m.MsgCPU)
	}

	// Ghost boxes: cumulative arrival counters per section per color.
	type ghostBox struct {
		arrived int
		ev      *sim.Event
	}
	ghosts := make([][2]*ghostBox, S)
	for i := range ghosts {
		ghosts[i] = [2]*ghostBox{{ev: k.NewEvent()}, {ev: k.NewEvent()}}
	}
	ghostArrive := func(sec, color int) {
		g := ghosts[sec][color]
		g.arrived++
		g.ev.Fire()
		g.ev = k.NewEvent()
	}
	ghostWait := func(p *sim.Proc, sec, color, target int) {
		for ghosts[sec][color].arrived < target {
			g := ghosts[sec][color]
			p.Wait(g.ev)
		}
	}

	// Reduction master bookkeeping (one reduction per iteration).
	redCount := 0
	redEv := k.NewEvent()

	nodeOf := func(sec int) int { return sec * cfg.Nodes / S }

	// Partition rows like the real driver.
	base := interior / S
	extra := interior % S

	edgeBytes := cfg.Cols/2*8 + 32 // one color's worth of one row

	for secIdx := 0; secIdx < S; secIdx++ {
		sec := secIdx
		rows := base
		if sec < extra {
			rows++
		}
		node := nodeOf(sec)
		neighbors := 0
		if sec > 0 {
			neighbors++
		}
		if sec < S-1 {
			neighbors++
		}
		pointsPerColor := rows * (cfg.Cols - 2) / 2
		edgeRows := 1
		if rows > 1 {
			edgeRows = 2
		}
		edgePoints := edgeRows * (cfg.Cols - 2) / 2
		interiorPoints := pointsPerColor - edgePoints

		// computePar models relaxing `points` points using the node's
		// processors: fan out over up to P workers.
		computePar := func(p *sim.Proc, points int) {
			if points <= 0 {
				return
			}
			workers := cfg.ProcsPerNode
			if workers > rows {
				workers = rows
			}
			if workers <= 1 {
				p.Use(cpus[node], time.Duration(points)*m.PointUpdate)
				return
			}
			done := k.NewEvent()
			remaining := workers
			chunk := time.Duration(points) * m.PointUpdate / time.Duration(workers)
			for w := 0; w < workers; w++ {
				k.Go(fmt.Sprintf("s%d-w%d", sec, w), func(wp *sim.Proc) {
					wp.Use(cpus[node], chunk)
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				})
			}
			p.Wait(done)
		}

		// pushEdges models the edge-exchange threads: one message per
		// neighbour carrying the freshly-relaxed edge cells.
		pushEdges := func(color int) *sim.Event {
			done := k.NewEvent()
			remaining := neighbors
			if remaining == 0 {
				done.Fire()
				return done
			}
			send := func(dst int, dstSec int) {
				k.Go(fmt.Sprintf("s%d-push", sec), func(pp *sim.Proc) {
					message(pp, node, dst, edgeBytes)
					ghostArrive(dstSec, color)
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				})
			}
			if sec > 0 {
				send(nodeOf(sec-1), sec-1)
			}
			if sec < S-1 {
				send(nodeOf(sec+1), sec+1)
			}
			return done
		}

		k.Go(fmt.Sprintf("section%d", sec), func(p *sim.Proc) {
			for iter := 1; iter <= cfg.Iters; iter++ {
				for _, color := range []int{0, 1} {
					// Wait for the ghosts this color's relaxation reads:
					// color 0 (black) of iteration i needs the red pushes
					// of iteration i-1; red needs this iteration's black.
					var need int
					if color == 0 {
						need = (iter - 1) * neighbors
					} else {
						need = iter * neighbors
					}
					// Color index the ghosts were pushed under:
					ghostColor := 1 - color
					ghostWait(p, sec, ghostColor, need)

					if cfg.Overlap {
						computePar(p, edgePoints)
						pushed := pushEdges(color)
						computePar(p, interiorPoints)
						p.Wait(pushed)
					} else {
						computePar(p, pointsPerColor)
						p.Wait(pushEdges(color))
					}
				}
				// Convergence reduction with the master on node 0 (§6's
				// "one additional thread per section communicating with a
				// single master regarding convergence").
				if node != 0 {
					message(p, node, 0, 64)
				} else {
					p.Use(cpus[0], m.MsgCPU)
				}
				redCount++
				if redCount == S {
					redCount = 0
					ev := redEv
					redEv = k.NewEvent()
					ev.Fire()
				} else {
					p.Wait(redEv)
				}
				// Master's reply back to this section (its CPU use
				// naturally serializes at node 0).
				if node != 0 {
					message(p, 0, node, 64)
				} else {
					p.Use(cpus[0], m.MsgCPU)
				}
			}
		})
	}

	par, err := k.Run()
	if err != nil {
		return SORPoint{}, err
	}

	seq := time.Duration(interior*(cfg.Cols-2)) * m.PointUpdate * time.Duration(cfg.Iters)
	pt := SORPoint{
		Config:   cfg,
		Parallel: par,
		Seq:      seq,
		Messages: messages,
	}
	if par > 0 {
		pt.Speedup = float64(seq) / float64(par)
		var busy time.Duration
		for _, c := range cpus {
			busy += c.BusyTime()
		}
		avail := par * time.Duration(cfg.Nodes*cfg.ProcsPerNode)
		pt.Utilization = float64(busy) / float64(avail)
	}
	return pt, nil
}
