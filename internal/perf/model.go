// Package perf regenerates the paper's evaluation (§5–§6): Table 1 operation
// latencies measured on the real runtime under the 1989 network profile, the
// SOR speedup studies of Figures 2 and 3 on the discrete-event model of the
// Firefly testbed, and the §4 microbenchmarks comparing Amber's object
// coherence with Ivy's page coherence.
package perf

import (
	"time"
)

// Model holds the calibrated cost parameters of the paper's hardware: 4-CPU
// CVAX Fireflies on 10 Mbit/s Ethernet with Topaz RPC.
type Model struct {
	// PointUpdate is the CPU time to relax one SOR grid point on a CVAX.
	PointUpdate time.Duration
	// MsgLatency is the fixed one-way message cost that is *not* CPU or
	// wire occupancy (propagation, interrupt dispatch, protocol waits).
	MsgLatency time.Duration
	// BandwidthBps is the wire bandwidth in bytes/second.
	BandwidthBps int64
	// MsgCPU is processor time consumed at each end per message
	// (marshalling, Topaz RPC software).
	MsgCPU time.Duration
	// MsgHeader approximates framing bytes charged to the wire.
	MsgHeader int
}

// CVAX1989 is the calibration used throughout EXPERIMENTS.md. Its
// consistency with Table 1: a remote invoke/return is two small messages
// (≈200 B + ≈100 B): 2·latency + tx + 4·MsgCPU ≈ 3.45·2 + 0.34 + 1.0 ≈
// 8.2 ms against the paper's 8.32 ms.
var CVAX1989 = Model{
	PointUpdate:  10 * time.Microsecond,
	MsgLatency:   3450 * time.Microsecond,
	BandwidthBps: 10_000_000 / 8,
	MsgCPU:       250 * time.Microsecond,
	MsgHeader:    64,
}

// TransmitTime is the wire occupancy of a message with the given payload.
func (m Model) TransmitTime(bytes int) time.Duration {
	if m.BandwidthBps <= 0 {
		return 0
	}
	return time.Duration(bytes+m.MsgHeader) * time.Second / time.Duration(m.BandwidthBps)
}

// OneWay is the full unloaded one-way message time (CPU both ends + wire +
// latency).
func (m Model) OneWay(bytes int) time.Duration {
	return 2*m.MsgCPU + m.TransmitTime(bytes) + m.MsgLatency
}

// RemoteInvoke models Table 1's remote invoke/return: a small request and a
// small reply.
func (m Model) RemoteInvoke() time.Duration {
	return m.OneWay(200) + m.OneWay(100)
}

// ObjectMove models Table 1's object move under its stated conditions: the
// destination found via a one-hop forwarding chain and the object fitting
// in one packet (≈1 KB): request, one forwarding hop, and the shipment
// (whose arrival completes the move; the reply to the mover overlaps the
// tail).
func (m Model) ObjectMove() time.Duration {
	return m.OneWay(150) + m.OneWay(150) + m.OneWay(1024)
}
