package perf

import (
	"fmt"
	"time"

	"amber/internal/core"
	"amber/internal/ivy"
)

// CompareRow is one line of a §4 comparison: a system/configuration, the
// messages and bytes it put on the wire, and the time those messages would
// cost on the 1989 network (serial approximation: each message pays latency
// and CPU; bytes pay bandwidth).
type CompareRow struct {
	System   string
	Msgs     int64
	Bytes    int64
	Model    time.Duration
	PerUnit  time.Duration // modelled time per critical section / update / scan
	Units    int
	Footnote string
}

func modelTime(m Model, msgs, bytes int64) time.Duration {
	return time.Duration(msgs)*(m.MsgLatency+2*m.MsgCPU) +
		time.Duration(bytes)*time.Second/time.Duration(m.BandwidthBps)
}

func newRow(system string, units int, msgs, bytes int64, note string) CompareRow {
	r := CompareRow{System: system, Msgs: msgs, Bytes: bytes, Units: units, Footnote: note}
	r.Model = modelTime(CVAX1989, msgs, bytes)
	if units > 0 {
		r.PerUnit = r.Model / time.Duration(units)
	}
	return r
}

// lockBox is a counter guarded by its class's own monitor-style operation:
// the "clustered" Amber pattern where one invocation is one critical
// section.
type lockBox struct{ N int }

// Bump is an entire critical section in one operation.
func (b *lockBox) Bump() int { b.N++; return b.N }

// LockContention reproduces the §4.1 claim: threads on two nodes contend on
// one lock. Amber pays one or three RPCs per critical section; Ivy shuttles
// the lock's page. iters critical sections alternate strictly between the
// two nodes (the worst — and common — case for page coherence).
func LockContention(iters int) ([]CompareRow, error) {
	var rows []CompareRow

	// --- Amber, clustered: lock+data encapsulated in one object ---
	{
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{Nodes: 2, ProcsPerNode: 2, Registry: reg})
		if err != nil {
			return nil, err
		}
		if err := cl.Register(&lockBox{}); err != nil {
			return nil, err
		}
		box, err := cl.Node(0).Root().New(&lockBox{})
		if err != nil {
			return nil, err
		}
		ctx0, ctx1 := cl.Node(0).Root(), cl.Node(1).Root()
		before := cl.NetStats().Value("msgs_sent")
		beforeB := cl.NetStats().Value("bytes_sent")
		for i := 0; i < iters; i++ {
			c := ctx0
			if i%2 == 1 {
				c = ctx1
			}
			if _, err := c.Invoke(box, "Bump"); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow("Amber (object encapsulates lock+data)", iters,
			cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB,
			"one function-shipped invocation per critical section"))
		cl.Close()
	}

	// --- Ivy, lock word and data on one page (§4.1's thrashing case) ---
	for _, layout := range []struct {
		name  string
		lockA int
		ctrA  int
		note  string
	}{
		{"Ivy (lock and data share a page)", 0, 8, "every acquire+update shuttles one page"},
		{"Ivy (lock and data on separate pages)", 0, 4096, "two pages shuttle instead of one"},
	} {
		s, err := ivy.NewSystem(ivy.Config{
			Nodes: 2, PageSize: 4096, NumPages: 4, Manager: ivy.FixedDistributed,
		})
		if err != nil {
			return nil, err
		}
		before := s.Fabric().Stats().Value("msgs_sent")
		beforeB := s.Fabric().Stats().Value("bytes_sent")
		for i := 0; i < iters; i++ {
			n := s.Node(i % 2)
			// Spin-acquire via CAS on the shared lock word.
			for {
				ok, err := n.CAS(layout.lockA, 0, 1)
				if err != nil {
					return nil, err
				}
				if ok {
					break
				}
			}
			v, err := n.ReadU64(layout.ctrA)
			if err != nil {
				return nil, err
			}
			if err := n.WriteU64(layout.ctrA, v+1); err != nil {
				return nil, err
			}
			if err := n.WriteU64(layout.lockA, 0); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow(layout.name, iters,
			s.Fabric().Stats().Value("msgs_sent")-before,
			s.Fabric().Stats().Value("bytes_sent")-beforeB,
			layout.note))
		s.Close()
	}

	// --- Ivy with RPC locks: the fix §4.1 says later Ivy adopted ---
	{
		s, err := ivy.NewSystem(ivy.Config{
			Nodes: 2, PageSize: 4096, NumPages: 4, Manager: ivy.FixedDistributed,
		})
		if err != nil {
			return nil, err
		}
		before := s.Fabric().Stats().Value("msgs_sent")
		beforeB := s.Fabric().Stats().Value("bytes_sent")
		for i := 0; i < iters; i++ {
			n := s.Node(i % 2)
			if err := n.RPCLockAcquire(1); err != nil {
				return nil, err
			}
			v, err := n.ReadU64(8)
			if err != nil {
				return nil, err
			}
			if err := n.WriteU64(8, v+1); err != nil {
				return nil, err
			}
			if err := n.RPCLockRelease(1); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow("Ivy (RPC locks — later Ivy's fix; data pages still ship)", iters,
			s.Fabric().Stats().Value("msgs_sent")-before,
			s.Fabric().Stats().Value("bytes_sent")-beforeB,
			"no lock-page thrash, but the data page still shuttles"))
		s.Close()
	}
	return rows, nil
}

// smallCell is a tiny per-node object for the false-sharing experiment.
type smallCell struct{ V uint64 }

// Set stores a value.
func (c *smallCell) Set(v uint64) { c.V = v }

// FalseSharing reproduces §4.2's sub-page claim: two nodes repeatedly update
// logically unrelated small data items. Under Ivy they thrash if the items
// share a page; under Amber each object simply lives where it is written.
func FalseSharing(iters int) ([]CompareRow, error) {
	var rows []CompareRow

	// Amber: one object per node; all writes are local.
	{
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{Nodes: 2, ProcsPerNode: 1, Registry: reg})
		if err != nil {
			return nil, err
		}
		if err := cl.Register(&smallCell{}); err != nil {
			return nil, err
		}
		a, _ := cl.Node(0).Root().New(&smallCell{})
		b, _ := cl.Node(1).Root().New(&smallCell{})
		before := cl.NetStats().Value("msgs_sent")
		beforeB := cl.NetStats().Value("bytes_sent")
		for i := 0; i < iters; i++ {
			if _, err := cl.Node(0).Root().Invoke(a, "Set", uint64(i)); err != nil {
				return nil, err
			}
			if _, err := cl.Node(1).Root().Invoke(b, "Set", uint64(i)); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow("Amber (one object per writer)", 2*iters,
			cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB,
			"objects live on their writers; zero communication"))
		cl.Close()
	}

	// Ivy: both words on one page, then on separate pages.
	for _, layout := range []struct {
		name  string
		addrB int
		note  string
	}{
		{"Ivy (items share a page)", 64, "artificial sharing: page ping-pongs every update"},
		{"Ivy (items on separate pages)", 4096, "programmer padded the data to page boundaries"},
	} {
		s, err := ivy.NewSystem(ivy.Config{
			Nodes: 2, PageSize: 4096, NumPages: 2, Manager: ivy.FixedDistributed,
		})
		if err != nil {
			return nil, err
		}
		before := s.Fabric().Stats().Value("msgs_sent")
		beforeB := s.Fabric().Stats().Value("bytes_sent")
		for i := 0; i < iters; i++ {
			if err := s.Node(0).WriteU64(0, uint64(i)); err != nil {
				return nil, err
			}
			if err := s.Node(1).WriteU64(layout.addrB, uint64(i)); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow(layout.name, 2*iters,
			s.Fabric().Stats().Value("msgs_sent")-before,
			s.Fabric().Stats().Value("bytes_sent")-beforeB,
			layout.note))
		s.Close()
	}
	return rows, nil
}

// bigBlob is a large object scanned remotely.
type bigBlob struct{ Data []byte }

// Sum scans the whole object (the operation executes at the data under
// function shipping).
func (b *bigBlob) Sum() uint64 {
	var s uint64
	for _, x := range b.Data {
		s += uint64(x)
	}
	return s
}

// BigObject reproduces §4.2's large-object claim: a node scans a remote
// object larger than a page. Ivy pays one fault per page; Amber pays one
// remote invocation (function shipping) or one bulk move.
func BigObject(sizeKB int) ([]CompareRow, error) {
	if sizeKB < 8 {
		sizeKB = 8
	}
	size := sizeKB * 1024
	var rows []CompareRow

	// Amber: single remote invocation; and the explicit bulk-move variant.
	{
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{Nodes: 2, ProcsPerNode: 1, Registry: reg})
		if err != nil {
			return nil, err
		}
		if err := cl.Register(&bigBlob{}); err != nil {
			return nil, err
		}
		blob := &bigBlob{Data: make([]byte, size)}
		for i := range blob.Data {
			blob.Data[i] = byte(i)
		}
		ref, err := cl.Node(1).Root().New(blob)
		if err != nil {
			return nil, err
		}
		ctx := cl.Node(0).Root()
		before := cl.NetStats().Value("msgs_sent")
		beforeB := cl.NetStats().Value("bytes_sent")
		if _, err := ctx.Invoke(ref, "Sum"); err != nil {
			return nil, err
		}
		rows = append(rows, newRow("Amber (function ships to the data)", 1,
			cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB,
			"one remote invocation; the scan runs at the data"))

		before = cl.NetStats().Value("msgs_sent")
		beforeB = cl.NetStats().Value("bytes_sent")
		if err := ctx.MoveTo(ref, 0); err != nil {
			return nil, err
		}
		if _, err := ctx.Invoke(ref, "Sum"); err != nil {
			return nil, err
		}
		rows = append(rows, newRow("Amber (bulk MoveTo, then local scan)", 1,
			cl.NetStats().Value("msgs_sent")-before, cl.NetStats().Value("bytes_sent")-beforeB,
			"one bulk transfer regardless of layout (§4.2)"))
		cl.Close()
	}

	// Ivy: the object occupies size/4096 pages owned by node 1; node 0
	// scans them.
	{
		pages := (size + 4095) / 4096
		s, err := ivy.NewSystem(ivy.Config{
			Nodes: 2, PageSize: 4096, NumPages: pages, Manager: ivy.FixedDistributed,
		})
		if err != nil {
			return nil, err
		}
		// Node 1 writes the data (becomes owner of every page).
		buf := make([]byte, 4096)
		for p := 0; p < pages; p++ {
			if err := s.Node(1).Write(p*4096, buf); err != nil {
				return nil, err
			}
		}
		before := s.Fabric().Stats().Value("msgs_sent")
		beforeB := s.Fabric().Stats().Value("bytes_sent")
		for p := 0; p < pages; p++ {
			if _, err := s.Node(0).Read(p*4096, 4096); err != nil {
				return nil, err
			}
		}
		rows = append(rows, newRow(fmt.Sprintf("Ivy (%d page faults)", pages), 1,
			s.Fabric().Stats().Value("msgs_sent")-before,
			s.Fabric().Stats().Value("bytes_sent")-beforeB,
			"one fault and one round trip per page"))
		s.Close()
	}
	return rows, nil
}
