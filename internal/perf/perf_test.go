package perf

import (
	"strings"
	"testing"
	"time"

	"amber/internal/transport"
)

func TestModelConsistentWithTable1(t *testing.T) {
	m := CVAX1989
	ri := m.RemoteInvoke()
	if ri < 7500*time.Microsecond || ri > 9200*time.Microsecond {
		t.Fatalf("modelled remote invoke = %v, want ≈8.32ms", ri)
	}
	mv := m.ObjectMove()
	if mv < 11*time.Millisecond || mv > 17*time.Millisecond {
		t.Fatalf("modelled object move = %v, want ≈12.4ms", mv)
	}
	if m.TransmitTime(1250) < 900*time.Microsecond {
		t.Fatalf("10 Mbit/s transmit time looks wrong: %v", m.TransmitTime(1250))
	}
}

func TestSimulateSORValidation(t *testing.T) {
	if _, err := SimulateSOR(SORConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := SimulateSOR(SORConfig{
		Nodes: 1, ProcsPerNode: 1, Rows: 5, Cols: 5, Iters: 1, Sections: 10, Model: CVAX1989,
	}); err == nil {
		t.Fatal("oversubscribed sections accepted")
	}
}

func TestSimulateSORSpeedupShape(t *testing.T) {
	run := func(nodes, procs, sections int, overlap bool) SORPoint {
		t.Helper()
		pt, err := SimulateSOR(SORConfig{
			Nodes: nodes, ProcsPerNode: procs, Sections: sections,
			Rows: PaperGridRows, Cols: PaperGridCols, Iters: 10,
			Overlap: overlap, Model: CVAX1989,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}

	s1 := run(1, 1, 8, true)
	if s1.Speedup < 0.90 || s1.Speedup > 1.02 {
		t.Fatalf("1Nx1P speedup = %.2f, want ≈1", s1.Speedup)
	}
	s44 := run(4, 4, 8, true)
	if s44.Speedup < 10 || s44.Speedup > 16 {
		t.Fatalf("4Nx4P speedup = %.2f, want ≈13±3 (paper ≈13–14)", s44.Speedup)
	}
	s84 := run(8, 4, 8, true)
	if s84.Speedup < 20 || s84.Speedup > 30 {
		t.Fatalf("8Nx4P speedup = %.2f, want ≈25 (paper: 25)", s84.Speedup)
	}
	s84n := run(8, 4, 8, false)
	if s84n.Speedup >= s84.Speedup {
		t.Fatalf("no-overlap (%.2f) should be slower than overlap (%.2f)",
			s84n.Speedup, s84.Speedup)
	}
	if s84.Speedup-s84n.Speedup < 1 {
		t.Fatalf("overlap benefit too small: %.2f vs %.2f", s84.Speedup, s84n.Speedup)
	}
	// The paper's equivalence observation: ≈equal speedups for all 4-CPU
	// totals (1Nx4P, 2Nx2P, 4Nx1P).
	s14 := run(1, 4, 8, true)
	s22 := run(2, 2, 8, true)
	s41 := run(4, 1, 8, true)
	min, max := s14.Speedup, s14.Speedup
	for _, v := range []float64{s22.Speedup, s41.Speedup} {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if (max-min)/max > 0.15 {
		t.Fatalf("4-processor configs diverge: 1Nx4P=%.2f 2Nx2P=%.2f 4Nx1P=%.2f",
			s14.Speedup, s22.Speedup, s41.Speedup)
	}
}

func TestSimulateSORDeterministic(t *testing.T) {
	cfg := SORConfig{
		Nodes: 3, ProcsPerNode: 2, Sections: 6,
		Rows: 60, Cols: 80, Iters: 5, Overlap: true, Model: CVAX1989,
	}
	a, err := SimulateSOR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSOR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Parallel != b.Parallel || a.Messages != b.Messages {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Parallel, a.Messages, b.Parallel, b.Messages)
	}
}

func TestFigure3MonotoneInProblemSize(t *testing.T) {
	pts, err := RunFigure3(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("only %d figure-3 points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup-0.2 {
			t.Fatalf("speedup not rising with problem size: %.2f then %.2f",
				pts[i-1].Speedup, pts[i].Speedup)
		}
	}
	small, large := pts[0].Speedup, pts[len(pts)-1].Speedup
	if small > large/1.5 {
		t.Fatalf("communication should dominate small grids: small=%.2f large=%.2f", small, large)
	}
	if large < 12 || large > 16.5 {
		t.Fatalf("large-grid 4Nx4P speedup = %.2f, want near 16", large)
	}
}

func TestMeasureTable1Shape(t *testing.T) {
	rows, err := MeasureTable1(3, transport.Ethernet1989)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Operation] = r
	}
	if len(byName) != 5 {
		t.Fatalf("got %d rows", len(byName))
	}
	local := byName["local invoke/return"].Measured
	remote := byName["remote invoke/return"].Measured
	move := byName["object move"].Measured
	if remote < 100*local {
		t.Fatalf("remote/local ratio = %.1f, want orders of magnitude (local=%v remote=%v)",
			float64(remote)/float64(local), local, remote)
	}
	if remote < 7*time.Millisecond || remote > 13*time.Millisecond {
		t.Fatalf("remote invoke = %v, want near 8.3ms under the 1989 profile", remote)
	}
	if move <= remote {
		t.Fatalf("object move (%v) should cost more than a remote invoke (%v)", move, remote)
	}
}

func TestLockContentionComparison(t *testing.T) {
	rows, err := LockContention(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	amber, ivyShared, ivyRPC := rows[0], rows[1], rows[3]
	if amber.Msgs >= ivyShared.Msgs {
		t.Fatalf("Amber (%d msgs) should beat Ivy shared-page (%d msgs)", amber.Msgs, ivyShared.Msgs)
	}
	// Amber: ≈1 RPC per remote critical section (half are local).
	if amber.Msgs > 2*20 {
		t.Fatalf("Amber used %d msgs for 20 critical sections", amber.Msgs)
	}
	// Later Ivy's RPC locks: comparable bytes to the CAS page (the data
	// page still shuttles once per critical section; the read-to-write
	// upgrade optimization keeps the second transfer off the wire), but
	// still far more messages than Amber's single invocation.
	if ivyRPC.Bytes > 2*ivyShared.Bytes {
		t.Fatalf("RPC-lock bytes exploded: %d vs %d", ivyRPC.Bytes, ivyShared.Bytes)
	}
	if ivyRPC.Msgs <= amber.Msgs {
		t.Fatalf("RPC-lock Ivy (%d msgs) should still trail Amber (%d msgs)", ivyRPC.Msgs, amber.Msgs)
	}
}

func TestFalseSharingComparison(t *testing.T) {
	rows, err := FalseSharing(20)
	if err != nil {
		t.Fatal(err)
	}
	amber, shared, padded := rows[0], rows[1], rows[2]
	if amber.Msgs != 0 {
		t.Fatalf("Amber should need zero messages, used %d", amber.Msgs)
	}
	if shared.Msgs < 20 {
		t.Fatalf("shared-page Ivy used only %d msgs; expected thrashing", shared.Msgs)
	}
	if padded.Msgs > shared.Msgs/3 {
		t.Fatalf("padding should mostly cure thrashing: %d vs %d", padded.Msgs, shared.Msgs)
	}
}

func TestBigObjectComparison(t *testing.T) {
	rows, err := BigObject(64)
	if err != nil {
		t.Fatal(err)
	}
	ship, move, ivyScan := rows[0], rows[1], rows[2]
	if ship.Msgs > 4 {
		t.Fatalf("function shipping used %d msgs, want ≈2", ship.Msgs)
	}
	if ivyScan.Msgs < 16 {
		t.Fatalf("Ivy scan used %d msgs, want ≥16 (one per page)", ivyScan.Msgs)
	}
	if ship.Bytes > ivyScan.Bytes/10 {
		t.Fatalf("function shipping moved %d bytes vs Ivy %d", ship.Bytes, ivyScan.Bytes)
	}
	if move.Bytes < 64*1024 {
		t.Fatalf("bulk move transferred only %d bytes", move.Bytes)
	}
	if move.Msgs >= ivyScan.Msgs {
		t.Fatalf("bulk move (%d msgs) should use far fewer messages than paging (%d)",
			move.Msgs, ivyScan.Msgs)
	}
}

func TestForwardingChainsAblation(t *testing.T) {
	rows, err := ForwardingChains(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.FirstMsgs <= r.SecondMsgs {
			t.Fatalf("hops=%d: first ref (%d msgs) should exceed cached ref (%d)",
				r.Hops, r.FirstMsgs, r.SecondMsgs)
		}
		if i > 0 && r.FirstMsgs <= rows[i-1].FirstMsgs {
			t.Fatalf("first-reference cost should grow with chain length: %v", rows)
		}
		// Cached reference is a 2-message round trip.
		if r.SecondMsgs != 2 {
			t.Fatalf("hops=%d: cached reference used %d msgs, want 2", r.Hops, r.SecondMsgs)
		}
	}
}

func TestMobilityAblation(t *testing.T) {
	rows, err := MobilityAblation(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	loose, attached, mutable, immutable := rows[0], rows[1], rows[2], rows[3]
	if attached.Msgs >= loose.Msgs {
		t.Fatalf("attached move (%d msgs) should beat %d independent moves (%d msgs)",
			attached.Msgs, 4, loose.Msgs)
	}
	if immutable.Msgs >= mutable.Msgs {
		t.Fatalf("immutable replication (%d msgs) should beat repeated remote reads (%d)",
			immutable.Msgs, mutable.Msgs)
	}
}

func TestFormatters(t *testing.T) {
	pts, err := RunFigure2(3)
	if err != nil {
		t.Fatal(err)
	}
	s := FormatSOR("Figure 2", pts, false)
	if !strings.Contains(s, "8Nx4P") || !strings.Contains(s, "no overlap") {
		t.Fatalf("figure 2 rendering:\n%s", s)
	}
	rows, err := MeasureTable1(1, transport.Instant)
	if err != nil {
		t.Fatal(err)
	}
	ts := FormatTable1(rows)
	if !strings.Contains(ts, "remote invoke/return") {
		t.Fatalf("table 1 rendering:\n%s", ts)
	}
}

func TestSensitivityReproducesSection5Prediction(t *testing.T) {
	rows, err := RunSensitivity(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	base, fastCPU, fastWire, lowLat := rows[0], rows[1], rows[2], rows[3]
	// The forecast: with 100x CPUs and the same latency, efficiency
	// collapses (communication dominates the now-tiny compute).
	if fastCPU.Point.Speedup > base.Point.Speedup/2 {
		t.Fatalf("fast CPUs kept speedup %.2f vs base %.2f — latency should dominate",
			fastCPU.Point.Speedup, base.Point.Speedup)
	}
	// Bandwidth alone barely helps.
	if fastWire.Point.Speedup > 2*fastCPU.Point.Speedup {
		t.Fatalf("bandwidth alone rescued speedup: %.2f vs %.2f",
			fastWire.Point.Speedup, fastCPU.Point.Speedup)
	}
	// Only lower latency restores the balance.
	if lowLat.Point.Speedup < 3*fastWire.Point.Speedup {
		t.Fatalf("low latency did not restore speedup: %.2f vs %.2f",
			lowLat.Point.Speedup, fastWire.Point.Speedup)
	}
}
