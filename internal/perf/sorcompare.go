package perf

import (
	"fmt"
	"time"

	"amber/internal/core"
	"amber/internal/ivy"
	"amber/internal/sor"
)

// SORCompareRow is one line of the Amber-vs-Ivy application comparison
// (E11): the same grid solved on both systems, with the communication each
// billed.
type SORCompareRow struct {
	System  string
	Workers int
	Iters   int
	Msgs    int64
	Bytes   int64
	// Model is the 1989-modelled cost of the run's communication.
	Model time.Duration
	// PerIter is communication per iteration.
	PerIterMsgs float64
	Note        string
}

// CompareSORSystems runs the paper's application on the real Amber runtime
// and on the real Ivy DSM — the comparison §6 could only speculate about —
// and reports the communication each system generated. Both runs use the
// same grid, tolerance, and partitioning, and both are verified (iteration
// counts must agree with the sequential solver, which both implementations
// match bitwise; see their test suites).
func CompareSORSystems(rows, cols, workers, iters int) ([]SORCompareRow, error) {
	if workers < 1 {
		workers = 2
	}
	const omega, eps = 1.5, 1e-4
	p := sor.DefaultProblem(rows, cols)

	var out []SORCompareRow

	// Amber.
	{
		reg := core.NewRegistry()
		cl, err := core.NewCluster(core.ClusterConfig{
			Nodes: workers, ProcsPerNode: 1, Registry: reg,
		})
		if err != nil {
			return nil, err
		}
		if err := sor.RegisterAll(cl); err != nil {
			cl.Close()
			return nil, err
		}
		res, err := sor.RunDistributed(cl, sor.Config{
			Problem: p, Omega: omega, Eps: eps, MaxIters: iters,
			Sections: workers, Overlap: true, ComputeThreads: 1,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		msgs := cl.NetStats().Value("msgs_sent")
		bytes := cl.NetStats().Value("bytes_sent")
		out = append(out, SORCompareRow{
			System: "Amber (object sections, overlapped edges)", Workers: workers,
			Iters: res.Iters, Msgs: msgs, Bytes: bytes,
			Model:       modelTime(CVAX1989, msgs, bytes),
			PerIterMsgs: float64(msgs) / float64(res.Iters),
			Note:        "edge rows ship as single invocations",
		})
		cl.Close()
	}

	// Ivy, both manager schemes.
	for _, kind := range []ivy.ManagerKind{ivy.FixedDistributed, ivy.DynamicDistributed} {
		res, err := ivy.SolveSOR(ivy.SORConfig{
			Rows: rows, Cols: cols, Omega: omega, Eps: eps, MaxIters: iters,
			Workers: workers, PageSize: 1024, Manager: kind,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SORCompareRow{
			System: fmt.Sprintf("Ivy (%s manager, 1 KiB pages)", kind), Workers: workers,
			Iters: res.Iters, Msgs: res.Msgs, Bytes: res.Bytes,
			Model:       modelTime(CVAX1989, res.Msgs, res.Bytes),
			PerIterMsgs: float64(res.Msgs) / float64(res.Iters),
			Note:        "boundary rows fault page by page",
		})
	}
	return out, nil
}

// FormatSORCompare renders E11.
func FormatSORCompare(rows []SORCompareRow, gridRows, gridCols int) string {
	s := fmt.Sprintf("E11: Red/Black SOR, %dx%d grid, %d workers — Amber objects vs Ivy pages\n",
		gridRows, gridCols, rows[0].Workers)
	s += fmt.Sprintf("%-46s %7s %9s %10s %12s %10s\n",
		"system", "iters", "msgs", "KB", "model (s)", "msgs/iter")
	for _, r := range rows {
		s += fmt.Sprintf("%-46s %7d %9d %10.1f %12.3f %10.1f   # %s\n",
			r.System, r.Iters, r.Msgs, float64(r.Bytes)/1024,
			r.Model.Seconds(), r.PerIterMsgs, r.Note)
	}
	return s
}
