package perf

import (
	"fmt"
	"time"

	"amber/internal/core"
	"amber/internal/gaddr"
	"amber/internal/transport"
)

// Table1Row is one operation's latency: the paper's measurement and ours.
type Table1Row struct {
	Operation string
	Paper     time.Duration
	Measured  time.Duration
}

// table1Paper holds the published numbers (Table 1).
var table1Paper = map[string]time.Duration{
	"object create":        180 * time.Microsecond,
	"local invoke/return":  12 * time.Microsecond,
	"remote invoke/return": 8320 * time.Microsecond,
	"object move":          12430 * time.Microsecond,
	"thread start/join":    1330 * time.Microsecond,
}

// bench fixture: a trivial class.
type noopObj struct{ N int }

// Poke is the minimal operation.
func (o *noopObj) Poke() int { o.N++; return o.N }

// MeasureTable1 reproduces Table 1 on the real runtime: a two-node cluster
// whose fabric injects the 1989 Ethernet profile. Conditions follow §5: the
// moving object fits in one packet, and move destinations are found through
// a one-hop forwarding chain (the object is re-located by a node holding a
// stale hint).
func MeasureTable1(iters int, profile transport.NetProfile) ([]Table1Row, error) {
	if iters < 1 {
		iters = 1
	}
	reg := core.NewRegistry()
	cl, err := core.NewCluster(core.ClusterConfig{
		Nodes: 3, ProcsPerNode: 4, Profile: profile, Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.Register(&noopObj{}); err != nil {
		return nil, err
	}
	ctx := cl.Node(0).Root()

	measure := func(name string, warm, once func() error) (Table1Row, error) {
		if warm != nil {
			if err := warm(); err != nil {
				return Table1Row{}, fmt.Errorf("%s warmup: %w", name, err)
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := once(); err != nil {
				return Table1Row{}, fmt.Errorf("%s: %w", name, err)
			}
		}
		return Table1Row{
			Operation: name,
			Paper:     table1Paper[name],
			Measured:  time.Since(start) / time.Duration(iters),
		}, nil
	}

	var rows []Table1Row

	// object create.
	row, err := measure("object create", nil, func() error {
		_, err := ctx.New(&noopObj{})
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// local invoke/return.
	local, err := ctx.New(&noopObj{})
	if err != nil {
		return nil, err
	}
	row, err = measure("local invoke/return", nil, func() error {
		_, err := ctx.Invoke(local, "Poke")
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// remote invoke/return: object on node 1, invoker on node 0.
	remote, err := cl.Node(1).Root().New(&noopObj{})
	if err != nil {
		return nil, err
	}
	row, err = measure("remote invoke/return",
		func() error { _, err := ctx.Invoke(remote, "Poke"); return err },
		func() error {
			_, err := ctx.Invoke(remote, "Poke")
			return err
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// object move under the paper's stated condition: the mover's hint is
	// one hop stale, so each move resolves a one-hop forwarding chain. The
	// mover is node 2, which learns the location once, then the object
	// bounces between nodes 0 and 1 under instruction from node 2 — whose
	// descriptor goes stale after every move... it is updated by the move
	// reply, so instead we alternate moves from a context that just moved
	// it away: node 2 sends the object 0→1 then 1→0; its cache is always
	// current, so the request takes one hop to the holder — matching the
	// "forwarding chain of one hop" budget (request, forward, transfer,
	// ack ≈ 4 messages) when issued against the home node.
	mover := cl.Node(2).Root()
	mobile, err := ctx.New(&noopObj{})
	if err != nil {
		return nil, err
	}
	flip := gaddr.NodeID(1)
	row, err = measure("object move",
		func() error { return mover.MoveTo(mobile, 1) },
		func() error {
			flip = 1 - flip // alternate 0 and 1
			return mover.MoveTo(mobile, 1-flip)
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// thread start/join on a local object.
	row, err = measure("thread start/join", nil, func() error {
		th, err := ctx.StartThread(local, "Poke")
		if err != nil {
			return err
		}
		_, err = ctx.Join(th)
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	return rows, nil
}
