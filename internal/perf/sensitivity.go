package perf

import (
	"fmt"
	"strings"
	"time"
)

// E12: the §5 prediction, quantified. The paper closes its cost section
// with: "As processors get faster the CPU overhead of using any distributed
// system becomes less significant, and the performance of the system is
// dominated by network latency, which will remain roughly constant despite
// the advent of new high-throughput networks." The DES model lets us test
// that forecast: scale CPU speed and network characteristics independently
// and watch where SOR speedup goes.

// SensitivityRow is one machine-evolution scenario.
type SensitivityRow struct {
	Scenario string
	Model    Model
	Point    SORPoint
	Note     string
}

// scaleCPU returns m with processors f× faster (point updates and
// per-message CPU shrink together — both are instructions).
func scaleCPU(m Model, f float64) Model {
	m.PointUpdate = time.Duration(float64(m.PointUpdate) / f)
	m.MsgCPU = time.Duration(float64(m.MsgCPU) / f)
	return m
}

// RunSensitivity evaluates the 8N×4P SOR configuration under machine
// evolutions: faster CPUs with the 1989 network, faster wires with 1989
// latency, and a genuinely lower-latency network.
func RunSensitivity(iters int) ([]SensitivityRow, error) {
	if iters <= 0 {
		iters = 25
	}
	base := CVAX1989

	fastCPU := scaleCPU(base, 100)

	fastWire := fastCPU
	fastWire.BandwidthBps = base.BandwidthBps * 1000 // 10 Gbit/s
	// MsgLatency unchanged: "roughly constant".

	lowLatency := fastWire
	lowLatency.MsgLatency = base.MsgLatency / 100 // ≈35 µs

	rows := []SensitivityRow{
		{Scenario: "1989 baseline (CVAX + 10 Mbit Ethernet)", Model: base,
			Note: "the paper's testbed"},
		{Scenario: "100x CPUs, 1989 network", Model: fastCPU,
			Note: "the forecast case: compute shrinks, latency does not"},
		{Scenario: "100x CPUs, 1000x bandwidth, 1989 latency", Model: fastWire,
			Note: "high-throughput networks alone do not help"},
		{Scenario: "100x CPUs, 1000x bandwidth, 100x lower latency", Model: lowLatency,
			Note: "only lower latency restores the balance"},
	}
	for i := range rows {
		cfg := SORConfig{
			Nodes: 8, ProcsPerNode: 4, Sections: 8,
			Rows: PaperGridRows, Cols: PaperGridCols,
			Iters: iters, Overlap: true, Model: rows[i].Model,
		}
		pt, err := SimulateSOR(cfg)
		if err != nil {
			return nil, err
		}
		rows[i].Point = pt
	}
	return rows, nil
}

// FormatSensitivity renders E12.
func FormatSensitivity(rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12: the §5 prediction — scale CPUs and network independently (8Nx4P SOR)\n")
	fmt.Fprintf(&b, "%-52s %9s %15s\n", "scenario", "speedup", "par/iter (ms)")
	for _, r := range rows {
		perIter := r.Point.Parallel / time.Duration(r.Point.Config.Iters)
		fmt.Fprintf(&b, "%-52s %9.2f %15.3f   # %s\n",
			r.Scenario, r.Point.Speedup,
			float64(perIter)/float64(time.Millisecond), r.Note)
	}
	return b.String()
}
