package ivy

import (
	"math"
	"testing"

	"amber/internal/sor"
)

func TestIvySORMatchesSequential(t *testing.T) {
	p := sor.DefaultProblem(18, 20)
	const omega, eps = 1.5, 1e-4
	want, wantIters, err := sor.SolveSequential(p, omega, eps, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ManagerKind{FixedDistributed, DynamicDistributed} {
		for _, workers := range []int{1, 2, 4} {
			res, err := SolveSOR(SORConfig{
				Rows: p.Rows, Cols: p.Cols, Omega: omega, Eps: eps,
				MaxIters: 5000, Workers: workers, PageSize: 64, Manager: kind,
			})
			if err != nil {
				t.Fatalf("%v/%d workers: %v", kind, workers, err)
			}
			if res.Iters != wantIters {
				t.Fatalf("%v/%d workers: %d iterations, sequential %d",
					kind, workers, res.Iters, wantIters)
			}
			maxDiff := 0.0
			for i := range want {
				for j := range want[i] {
					if d := math.Abs(want[i][j] - res.Grid[i][j]); d > maxDiff {
						maxDiff = d
					}
				}
			}
			if maxDiff > 1e-9 {
				t.Fatalf("%v/%d workers: grids differ by %g", kind, workers, maxDiff)
			}
		}
	}
}

func TestIvySORValidation(t *testing.T) {
	if _, err := SolveSOR(SORConfig{Rows: 2, Cols: 5, Omega: 1.5, Eps: 1e-3, MaxIters: 5}); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := SolveSOR(SORConfig{Rows: 10, Cols: 10, Omega: 3, Eps: 1e-3, MaxIters: 5}); err == nil {
		t.Fatal("bad omega accepted")
	}
	if _, err := SolveSOR(SORConfig{Rows: 5, Cols: 5, Omega: 1.5, Eps: 1e-3, MaxIters: 5, Workers: 99}); err == nil {
		t.Fatal("oversubscribed workers accepted")
	}
}

func TestIvySORCommunicationGrowsWithWorkers(t *testing.T) {
	run := func(workers int) *SORResult {
		t.Helper()
		res, err := SolveSOR(SORConfig{
			Rows: 20, Cols: 20, Omega: 1.5, Eps: 1e-3,
			MaxIters: 300, Workers: workers, PageSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	// A single worker still pays the gather + init, but the parallel run
	// pays per-iteration boundary traffic.
	if four.Msgs <= one.Msgs {
		t.Fatalf("4 workers sent %d msgs, 1 worker %d; boundary traffic missing",
			four.Msgs, one.Msgs)
	}
	if four.PageStats["read_faults"] == 0 || four.PageStats["ownership_transfers"] == 0 {
		t.Fatalf("page machinery unused: %v", four.PageStats)
	}
}
