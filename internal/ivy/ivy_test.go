package ivy

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newDSM(t testing.TB, nodes int, kind ManagerKind) *System {
	t.Helper()
	s, err := NewSystem(Config{Nodes: nodes, PageSize: 256, NumPages: 8, Manager: kind})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

var allKinds = []ManagerKind{FixedDistributed, Centralized, DynamicDistributed}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Nodes: 0, PageSize: 256, NumPages: 1},
		{Nodes: 1, PageSize: 4, NumPages: 1},
		{Nodes: 1, PageSize: 256, NumPages: 0},
	} {
		if _, err := NewSystem(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestAccessValidation(t *testing.T) {
	s := newDSM(t, 1, FixedDistributed)
	n := s.Node(0)
	if _, err := n.Read(-1, 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative addr: %v", err)
	}
	if _, err := n.Read(256*8-2, 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past end: %v", err)
	}
	// Spanning reads/writes are legal (they fault page by page)...
	if err := n.Write(250, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
		t.Errorf("spanning write: %v", err)
	}
	b, err := n.Read(250, 12)
	if err != nil || b[0] != 1 || b[11] != 12 {
		t.Errorf("spanning read: %v %v", b, err)
	}
	// ...but CAS must stay within one page (it is atomic).
	if _, err := n.CAS(252, 0, 1); !errors.Is(err, ErrCrossPage) {
		t.Errorf("cross-page CAS: %v", err)
	}
}

func TestLocalReadWrite(t *testing.T) {
	s := newDSM(t, 1, FixedDistributed)
	n := s.Node(0)
	if err := n.WriteU64(16, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := n.ReadU64(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("read %x", v)
	}
}

func TestRemoteReadSeesWrite(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := newDSM(t, 3, kind)
			if err := s.Node(0).WriteU64(8, 42); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < 3; i++ {
				v, err := s.Node(i).ReadU64(8)
				if err != nil {
					t.Fatal(err)
				}
				if v != 42 {
					t.Fatalf("node %d read %d", i, v)
				}
			}
			// All three hold read copies now.
			for i := 0; i < 3; i++ {
				if s.Node(i).Access(0) < int(pageRead) {
					t.Fatalf("node %d lost read access", i)
				}
			}
		})
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := newDSM(t, 3, kind)
			s.Node(0).WriteU64(8, 1)
			s.Node(1).ReadU64(8)
			s.Node(2).ReadU64(8)
			// Node 2 writes: nodes 0 and 1 must lose their copies.
			if err := s.Node(2).WriteU64(8, 2); err != nil {
				t.Fatal(err)
			}
			if s.Node(0).Access(0) != int(pageInvalid) {
				t.Fatal("node 0 kept a stale copy")
			}
			if s.Node(1).Access(0) != int(pageInvalid) {
				t.Fatal("node 1 kept a stale copy")
			}
			v, _ := s.Node(0).ReadU64(8)
			if v != 2 {
				t.Fatalf("node 0 re-read %d, want 2", v)
			}
		})
	}
}

func TestOwnershipMigratesWithWrites(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := newDSM(t, 4, kind)
			// The page bounces across every node; each increments a word.
			addr := 512 // page 2
			for round := 0; round < 3; round++ {
				for i := 0; i < 4; i++ {
					n := s.Node(i)
					v, err := n.ReadU64(addr)
					if err != nil {
						t.Fatal(err)
					}
					if err := n.WriteU64(addr, v+1); err != nil {
						t.Fatal(err)
					}
				}
			}
			v, _ := s.Node(0).ReadU64(addr)
			if v != 12 {
				t.Fatalf("counter = %d, want 12", v)
			}
		})
	}
}

func TestSWMRInvariant(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := newDSM(t, 4, kind)
			s.Node(3).WriteU64(0, 7)
			// Exactly one node may have write access to page 0.
			writers := 0
			for i := 0; i < 4; i++ {
				if s.Node(i).Access(0) == int(pageWrite) {
					writers++
				}
			}
			if writers != 1 {
				t.Fatalf("%d writers, want 1", writers)
			}
		})
	}
}

func TestFullPageTransfersAreAtomic(t *testing.T) {
	// Writers fill a page with a single repeated byte + write a version;
	// readers must never observe a torn page.
	for _, kind := range []ManagerKind{FixedDistributed, DynamicDistributed} {
		t.Run(kind.String(), func(t *testing.T) {
			s, err := NewSystem(Config{Nodes: 3, PageSize: 128, NumPages: 2, Manager: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			// Two writers alternate patterns on page 1.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					n := s.Node(w)
					buf := make([]byte, 128)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						fill := byte(w*16 + i%8)
						for j := range buf {
							buf[j] = fill
						}
						if err := n.Write(128, buf); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			// A reader checks page uniformity.
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := s.Node(2)
				for {
					select {
					case <-stop:
						return
					default:
					}
					b, err := n.Read(128, 128)
					if err != nil {
						errs <- err
						return
					}
					for j := 1; j < len(b); j++ {
						if b[j] != b[0] {
							errs <- fmt.Errorf("torn page: b[0]=%d b[%d]=%d", b[0], j, b[j])
							return
						}
					}
				}
			}()
			time.Sleep(200 * time.Millisecond)
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestCASLockAcrossNodes(t *testing.T) {
	// A spinlock implemented with a shared word — the §4.1 pattern. The
	// protected counter lives on the same page, maximizing contention.
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := newDSM(t, 3, kind)
			const lockAddr, ctrAddr = 0, 8
			const perWorker = 10
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					n := s.Node(w)
					for i := 0; i < perWorker; i++ {
						// Acquire.
						for {
							ok, err := n.CAS(lockAddr, 0, uint64(w)+1)
							if err != nil {
								errs <- err
								return
							}
							if ok {
								break
							}
						}
						v, err := n.ReadU64(ctrAddr)
						if err != nil {
							errs <- err
							return
						}
						if err := n.WriteU64(ctrAddr, v+1); err != nil {
							errs <- err
							return
						}
						// Release.
						if err := n.WriteU64(lockAddr, 0); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			v, _ := s.Node(0).ReadU64(ctrAddr)
			if v != 3*perWorker {
				t.Fatalf("counter = %d, want %d (lost updates)", v, 3*perWorker)
			}
			// The §4.1 point: the lock page shuttled between nodes.
			transfers := int64(0)
			for i := 0; i < 3; i++ {
				transfers += s.Node(i).Stats().Value("ownership_transfers")
			}
			// Each worker must have taken ownership at least once; with
			// true concurrency the page ping-pongs far more, but a worker
			// can also run all its critical sections back-to-back.
			if transfers < 2 {
				t.Fatalf("only %d ownership transfers; lock page never moved", transfers)
			}
		})
	}
}

func TestFalseSharingCausesTransfers(t *testing.T) {
	// Two nodes write disjoint words that share a page: every write faults.
	s := newDSM(t, 2, FixedDistributed)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := s.Node(0).WriteU64(0, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Node(1).WriteU64(64, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	transfers := s.Node(0).Stats().Value("ownership_transfers") +
		s.Node(1).Stats().Value("ownership_transfers")
	if transfers < rounds {
		t.Fatalf("transfers = %d; false sharing should shuttle the page every round", transfers)
	}
	// Control: words on distinct pages do not interfere.
	s2 := newDSM(t, 2, FixedDistributed)
	s2.Node(0).WriteU64(0, 1)
	s2.Node(1).WriteU64(256, 1)
	for i := 0; i < rounds; i++ {
		s2.Node(0).WriteU64(0, uint64(i))
		s2.Node(1).WriteU64(256, uint64(i))
	}
	transfers2 := s2.Node(0).Stats().Value("ownership_transfers") +
		s2.Node(1).Stats().Value("ownership_transfers")
	if transfers2 > 2 {
		t.Fatalf("distinct pages caused %d transfers", transfers2)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	for _, kind := range []ManagerKind{FixedDistributed, DynamicDistributed} {
		t.Run(kind.String(), func(t *testing.T) {
			s, err := NewSystem(Config{Nodes: 4, PageSize: 64, NumPages: 16, Manager: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			// Each worker owns a distinct word on a distinct page and also
			// reads everyone else's words.
			const rounds = 25
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					n := s.Node(w)
					myAddr := w * 64 * 4 // page 4w
					for i := 1; i <= rounds; i++ {
						if err := n.WriteU64(myAddr, uint64(i)); err != nil {
							errs <- err
							return
						}
						for o := 0; o < 4; o++ {
							v, err := n.ReadU64(o * 64 * 4)
							if err != nil {
								errs <- err
								return
							}
							if o == w && v != uint64(i) {
								errs <- fmt.Errorf("node %d read back %d, want %d", w, v, i)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			// Quiescent check: everyone agrees on final values.
			for o := 0; o < 4; o++ {
				want := uint64(rounds)
				for w := 0; w < 4; w++ {
					v, err := s.Node(w).ReadU64(o * 64 * 4)
					if err != nil {
						t.Fatal(err)
					}
					if v != want {
						t.Fatalf("node %d sees %d at page %d, want %d", w, v, 4*o, want)
					}
				}
			}
		})
	}
}

func TestPageDataIsolation(t *testing.T) {
	// A read copy must be a copy: mutating the returned slice or the
	// owner's page later must not affect the other.
	s := newDSM(t, 2, FixedDistributed)
	s.Node(0).Write(0, bytes.Repeat([]byte{7}, 16))
	b, _ := s.Node(1).Read(0, 16)
	b[0] = 99
	b2, _ := s.Node(1).Read(0, 16)
	if b2[0] != 7 {
		t.Fatal("caller mutation leaked into the page")
	}
}

func TestRPCLocks(t *testing.T) {
	s := newDSM(t, 3, FixedDistributed)
	// Mutual exclusion across nodes, counter on a shared page.
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := s.Node(w)
			for i := 0; i < perWorker; i++ {
				if err := n.RPCLockAcquire(42); err != nil {
					errs <- err
					return
				}
				v, err := n.ReadU64(64)
				if err != nil {
					errs <- err
					return
				}
				if err := n.WriteU64(64, v+1); err != nil {
					errs <- err
					return
				}
				if err := n.RPCLockRelease(42); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, _ := s.Node(0).ReadU64(64)
	if v != 3*perWorker {
		t.Fatalf("counter = %d, want %d (RPC lock failed to exclude)", v, 3*perWorker)
	}
}

func TestRPCLockErrors(t *testing.T) {
	s := newDSM(t, 2, FixedDistributed)
	if err := s.Node(1).RPCLockRelease(7); err == nil {
		t.Fatal("release of never-acquired lock should fail")
	}
	// Distinct lock IDs are independent.
	if err := s.Node(0).RPCLockAcquire(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Node(1).RPCLockAcquire(2) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("independent lock blocked")
	}
	s.Node(0).RPCLockRelease(1)
	s.Node(1).RPCLockRelease(2)
}

func TestRPCLockQueuedGrant(t *testing.T) {
	s := newDSM(t, 2, FixedDistributed)
	if err := s.Node(0).RPCLockAcquire(9); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		s.Node(1).RPCLockAcquire(9)
		close(got)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("second acquire succeeded while held")
	default:
	}
	if err := s.Node(0).RPCLockRelease(9); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("queued grant never delivered")
	}
}
