package ivy

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomOpsAgainstReferenceMemory model-checks the DSM: a random
// sequence of reads and writes from random nodes must behave exactly like a
// flat reference array, for every manager scheme. Operations are issued
// sequentially (one at a time), so the reference semantics are exact; the
// concurrency of the protocol itself is exercised by the other tests.
func TestRandomOpsAgainstReferenceMemory(t *testing.T) {
	const (
		nodes    = 4
		pageSize = 64
		numPages = 6
		ops      = 1500
	)
	for _, kind := range allKinds {
		for _, seed := range []int64{3, 11, 1989} {
			t.Run(fmt.Sprintf("%v/seed=%d", kind, seed), func(t *testing.T) {
				s, err := NewSystem(Config{
					Nodes: nodes, PageSize: pageSize, NumPages: numPages, Manager: kind,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				ref := make([]byte, pageSize*numPages)
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < ops; i++ {
					n := s.Node(rng.Intn(nodes))
					switch rng.Intn(4) {
					case 0: // word write
						addr := rng.Intn(len(ref)/8) * 8
						v := rng.Uint64()
						if err := n.WriteU64(addr, v); err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
						binary.LittleEndian.PutUint64(ref[addr:], v)
					case 1: // word read
						addr := rng.Intn(len(ref)/8) * 8
						v, err := n.ReadU64(addr)
						if err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
						want := binary.LittleEndian.Uint64(ref[addr:])
						if v != want {
							t.Fatalf("op %d: node read %x at %d, want %x", i, v, addr, want)
						}
					case 2: // block write (possibly spanning pages)
						size := 1 + rng.Intn(100)
						addr := rng.Intn(len(ref) - size)
						buf := make([]byte, size)
						rng.Read(buf)
						if err := n.Write(addr, buf); err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
						copy(ref[addr:], buf)
					case 3: // block read
						size := 1 + rng.Intn(100)
						addr := rng.Intn(len(ref) - size)
						got, err := n.Read(addr, size)
						if err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
						for j := range got {
							if got[j] != ref[addr+j] {
								t.Fatalf("op %d: byte %d differs: %d vs %d",
									i, addr+j, got[j], ref[addr+j])
							}
						}
					}
				}
				// Final audit from every node.
				for w := 0; w < nodes; w++ {
					got, err := s.Node(w).Read(0, len(ref))
					if err != nil {
						t.Fatal(err)
					}
					for j := range got {
						if got[j] != ref[j] {
							t.Fatalf("audit node %d: byte %d differs", w, j)
						}
					}
				}
			})
		}
	}
}
