// Package ivy implements a page-based distributed shared memory in the
// style of Li's Ivy (Li & Hudak 1986), the system §4 of the Amber paper
// compares against. Processes on every node share a flat paged memory;
// coherence is single-writer/multiple-reader with write-invalidate,
// maintained by page managers.
//
// Two manager schemes from Li's thesis are provided:
//
//   - FixedDistributed: page p is managed by node p mod N; the manager
//     tracks the owner and forwards faults to it.
//   - DynamicDistributed: no managers; every node keeps a probable-owner
//     hint per page and faults chase the hint chain — the same
//     forwarding-address idea Amber uses for objects (§3.3), which makes
//     the comparison between the two systems particularly direct.
//
// Real Ivy fields hardware page faults; here the faults are explicit Read/
// Write/CAS accessors, which preserves the protocol and its message
// economics (the objects of comparison in §4) without kernel support.
package ivy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"amber/internal/gaddr"
	"amber/internal/rpc"
	"amber/internal/stats"
	"amber/internal/transport"
)

// ManagerKind selects the coherence-management scheme.
type ManagerKind int

const (
	// FixedDistributed assigns page p to manager node p mod N.
	FixedDistributed ManagerKind = iota
	// Centralized puts every page's manager on node 0.
	Centralized
	// DynamicDistributed uses probable-owner chains instead of managers.
	DynamicDistributed
)

func (k ManagerKind) String() string {
	switch k {
	case FixedDistributed:
		return "fixed-distributed"
	case Centralized:
		return "centralized"
	case DynamicDistributed:
		return "dynamic-distributed"
	}
	return "unknown"
}

// Config describes a DSM instance.
type Config struct {
	Nodes    int
	PageSize int // bytes per page
	NumPages int
	Manager  ManagerKind
	Profile  transport.NetProfile
}

// Errors.
var (
	ErrOutOfRange = errors.New("ivy: address out of range")
	ErrCrossPage  = errors.New("ivy: access crosses a page boundary")
)

// page access states.
type pageState uint8

const (
	pageInvalid pageState = iota
	pageRead
	pageWrite // implies ownership
)

// page is one node's view of a shared page.
type page struct {
	mu   sync.Mutex
	cond *sync.Cond

	state pageState
	data  []byte

	// owned marks ownership, which is independent of access level: an
	// owner that has served readers holds a read copy but still owns the
	// page (and its copyset).
	owned bool

	// busy marks a fault in progress on this node for this page;
	// concurrent accesses wait.
	busy busyKind

	// owner bookkeeping:
	// - fixed/centralized: valid at the page's manager node.
	// - dynamic: probable-owner hint, valid everywhere.
	owner gaddr.NodeID

	// copyset lists nodes holding read copies; valid at the owner.
	copyset map[gaddr.NodeID]struct{}
}

// System is an in-process DSM deployment.
type System struct {
	cfg    Config
	fabric *transport.Fabric
	nodes  []*Node
}

// NewSystem builds a DSM with cfg.Nodes nodes. Initially node 0 owns every
// page (zero-filled), as after a fresh mmap.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes < 1 || cfg.PageSize < 8 || cfg.NumPages < 1 {
		return nil, fmt.Errorf("ivy: bad config %+v", cfg)
	}
	s := &System{cfg: cfg, fabric: transport.NewFabric(cfg.Profile)}
	for i := 0; i < cfg.Nodes; i++ {
		tr, err := s.fabric.Attach(gaddr.NodeID(i))
		if err != nil {
			return nil, err
		}
		n := newNode(cfg, gaddr.NodeID(i), tr)
		s.nodes = append(s.nodes, n)
	}
	return s, nil
}

// Node returns node i's memory interface.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// NumNodes reports the node count.
func (s *System) NumNodes() int { return len(s.nodes) }

// Fabric exposes the network for stats.
func (s *System) Fabric() *transport.Fabric { return s.fabric }

// Close shuts the system down.
func (s *System) Close() { s.fabric.Close() }

// Node is one process's attachment to the shared memory.
type Node struct {
	cfg    Config
	id     gaddr.NodeID
	ep     *rpc.Endpoint
	pages  []*page
	counts *stats.Set
	// locksrv is the RPC lock server role, held by node 0 (see rpclock.go).
	locksrv *lockServer
}

// protocol procs.
const (
	procReadFault  rpc.Proc = 20
	procWriteFault rpc.Proc = 21
	procInvalidate rpc.Proc = 22
)

// faultMsg requests a page copy or ownership.
type faultMsg struct {
	Page      int
	Requester gaddr.NodeID
	Hops      int
	// HaveCopy marks a write fault from a node holding a valid read copy:
	// only ownership (and the copyset) need transfer, not the data — Li's
	// read-to-write upgrade optimization.
	HaveCopy bool
}

// faultReply carries the page to the requester.
type faultReply struct {
	Data []byte
	// Copyset transfers with ownership on write faults.
	Copyset []gaddr.NodeID
	// Owner is the responding owner (updates hints).
	Owner gaddr.NodeID
}

// invalMsg invalidates a read copy.
type invalMsg struct {
	Page int
}

func newNode(cfg Config, id gaddr.NodeID, tr transport.Transport) *Node {
	n := &Node{cfg: cfg, id: id, ep: rpc.NewEndpoint(tr), counts: stats.NewSet()}
	n.pages = make([]*page, cfg.NumPages)
	for p := range n.pages {
		pg := &page{owner: 0}
		pg.cond = sync.NewCond(&pg.mu)
		if id == 0 {
			pg.state = pageWrite
			pg.owned = true
			pg.data = make([]byte, cfg.PageSize)
			pg.copyset = make(map[gaddr.NodeID]struct{})
		}
		n.pages[p] = pg
	}
	n.ep.HandleProc(procReadFault, n.handleReadFault)
	n.ep.HandleProc(procWriteFault, n.handleWriteFault)
	n.ep.HandleProc(procInvalidate, n.handleInvalidate)
	n.installLockServer()
	return n
}

// Stats exposes the node's fault/message counters.
func (n *Node) Stats() *stats.Set { return n.counts }

// PageOf returns the page number containing addr.
func (n *Node) PageOf(addr int) int { return addr / n.cfg.PageSize }

// managerOf returns the manager node for a page (fixed/centralized modes).
func (n *Node) managerOf(p int) gaddr.NodeID {
	if n.cfg.Manager == Centralized {
		return 0
	}
	return gaddr.NodeID(p % n.cfg.Nodes)
}

func (n *Node) checkRange(addr, size int) (int, error) {
	if addr < 0 || size < 0 || addr+size > n.cfg.PageSize*n.cfg.NumPages {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrOutOfRange, addr, size)
	}
	p := n.PageOf(addr)
	if size > 0 && n.PageOf(addr+size-1) != p {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrCrossPage, addr, size)
	}
	return p, nil
}

// Read copies size bytes at addr into a fresh slice, faulting each touched
// page to read access as needed. An access spanning pages faults the pages
// one at a time, exactly as a memcpy over mapped-but-invalid pages would.
// Spanning reads are not atomic across pages (neither are they on real SVM).
func (n *Node) Read(addr, size int) ([]byte, error) {
	if addr < 0 || size < 0 || addr+size > n.cfg.PageSize*n.cfg.NumPages {
		return nil, fmt.Errorf("%w: [%d,+%d)", ErrOutOfRange, addr, size)
	}
	out := make([]byte, size)
	for done := 0; done < size; {
		p := n.PageOf(addr + done)
		off := addr + done - p*n.cfg.PageSize
		chunk := n.cfg.PageSize - off
		if chunk > size-done {
			chunk = size - done
		}
		pg := n.pages[p]
		pg.mu.Lock()
		if err := n.ensureLocked(pg, p, pageRead); err != nil {
			pg.mu.Unlock()
			return nil, err
		}
		copy(out[done:done+chunk], pg.data[off:off+chunk])
		pg.mu.Unlock()
		done += chunk
	}
	return out, nil
}

// Write stores data at addr, faulting each touched page to write access as
// needed (spanning accesses fault page by page, non-atomically).
func (n *Node) Write(addr int, data []byte) error {
	size := len(data)
	if addr < 0 || addr+size > n.cfg.PageSize*n.cfg.NumPages {
		return fmt.Errorf("%w: [%d,+%d)", ErrOutOfRange, addr, size)
	}
	for done := 0; done < size; {
		p := n.PageOf(addr + done)
		off := addr + done - p*n.cfg.PageSize
		chunk := n.cfg.PageSize - off
		if chunk > size-done {
			chunk = size - done
		}
		pg := n.pages[p]
		pg.mu.Lock()
		if err := n.ensureLocked(pg, p, pageWrite); err != nil {
			pg.mu.Unlock()
			return err
		}
		copy(pg.data[off:off+chunk], data[done:done+chunk])
		pg.mu.Unlock()
		done += chunk
	}
	return nil
}

// ReadU64 and WriteU64 are convenience word accessors.
func (n *Node) ReadU64(addr int) (uint64, error) {
	b, err := n.Read(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (n *Node) WriteU64(addr int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return n.Write(addr, b[:])
}

// CAS performs an atomic compare-and-swap on a shared 64-bit word: it
// acquires write ownership of the page (invalidating all copies — this is
// what makes shared-memory spinlocks thrash, §4.1) and performs the swap
// locally.
func (n *Node) CAS(addr int, old, new uint64) (bool, error) {
	p, err := n.checkRange(addr, 8)
	if err != nil {
		return false, err
	}
	pg := n.pages[p]
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if err := n.ensureLocked(pg, p, pageWrite); err != nil {
		return false, err
	}
	off := addr - p*n.cfg.PageSize
	cur := binary.LittleEndian.Uint64(pg.data[off : off+8])
	if cur != old {
		return false, nil
	}
	binary.LittleEndian.PutUint64(pg.data[off:off+8], new)
	return true, nil
}

// Access reports the node's current access to a page (for tests): 0 none,
// 1 read, 2 write.
func (n *Node) Access(p int) int {
	pg := n.pages[p]
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return int(pg.state)
}
