package ivy

import (
	"fmt"

	"amber/internal/gaddr"
	"amber/internal/rpc"
	"amber/internal/wire"
)

// busyKind records what kind of fault is in flight on a page (it decides
// whether an incoming invalidation must wait, see handleInvalidate).
type busyKind uint8

const (
	busyNone busyKind = iota
	busyReadFault
	busyWriteFault
)

// ensureLocked upgrades the node's access to page p to at least want.
// Called with pg.mu held; may release it around the network protocol.
func (n *Node) ensureLocked(pg *page, p int, want pageState) error {
	for pg.busy != busyNone {
		pg.cond.Wait()
	}
	switch want {
	case pageRead:
		if pg.state >= pageRead {
			return nil
		}
		return n.faultLocked(pg, p, busyReadFault)
	case pageWrite:
		if pg.state == pageWrite {
			return nil
		}
		if pg.owned && pg.state == pageRead {
			// Owner downgraded by a past read service: upgrade in place by
			// invalidating the read copies; no data transfer needed.
			return n.upgradeLocked(pg, p)
		}
		return n.faultLocked(pg, p, busyWriteFault)
	}
	return fmt.Errorf("ivy: bad access %d", want)
}

// upgradeLocked restores exclusive access for the owner.
func (n *Node) upgradeLocked(pg *page, p int) error {
	pg.busy = busyWriteFault
	members := copysetSlice(pg.copyset)
	pg.mu.Unlock()
	err := n.invalidateAll(p, members)
	pg.mu.Lock()
	pg.busy = busyNone
	pg.cond.Broadcast()
	if err != nil {
		return err
	}
	pg.copyset = make(map[gaddr.NodeID]struct{})
	pg.state = pageWrite
	n.counts.Inc("upgrades")
	return nil
}

// faultLocked performs a read or write fault. pg.mu held on entry and exit;
// released during the protocol with pg.busy set.
func (n *Node) faultLocked(pg *page, p int, kind busyKind) error {
	pg.busy = kind
	target := n.faultTarget(pg, p, kind == busyWriteFault)
	haveCopy := kind == busyWriteFault && pg.state == pageRead
	pg.mu.Unlock()

	proc := procReadFault
	name := "read_faults"
	if kind == busyWriteFault {
		proc = procWriteFault
		name = "write_faults"
	}
	n.counts.Inc(name)
	body, err := wire.MarshalInto(&faultMsg{Page: p, Requester: n.id, HaveCopy: haveCopy})
	var resp []byte
	if err == nil {
		resp, err = n.ep.Call(target, proc, body)
	}
	var fr faultReply
	if err == nil {
		err = wire.UnmarshalFrom(resp, &fr)
	}
	// For write faults, invalidate the transferred copyset before taking
	// write access (SWMR: write access only after all read copies die).
	if err == nil && kind == busyWriteFault {
		var members []gaddr.NodeID
		for _, m := range fr.Copyset {
			if m != n.id {
				members = append(members, m)
			}
		}
		err = n.invalidateAll(p, members)
	}

	pg.mu.Lock()
	pg.busy = busyNone
	pg.cond.Broadcast()
	if err != nil {
		return err
	}
	if fr.Data != nil || !haveCopy {
		pg.data = fr.Data
	}
	if kind == busyWriteFault {
		pg.state = pageWrite
		pg.owned = true
		pg.copyset = make(map[gaddr.NodeID]struct{})
		pg.owner = n.id
	} else {
		pg.state = pageRead
		pg.owner = fr.Owner // learn the true owner (hint)
	}
	return nil
}

// faultTarget picks where to send a fault: the page's manager, or the
// probable owner in dynamic mode. When the faulting node is itself the
// manager, it consults its own owner table directly (no message to self)
// and, for write faults, records itself as the new owner — exactly what the
// manager would have done on its behalf. Caller holds pg.mu.
func (n *Node) faultTarget(pg *page, p int, write bool) gaddr.NodeID {
	if n.cfg.Manager == DynamicDistributed {
		if pg.owner == n.id || pg.owner == gaddr.NoNode {
			// Self-hints can linger after losing ownership; fall back to
			// the initial owner, node 0, which is always on some chain.
			return 0
		}
		return pg.owner
	}
	mgr := n.managerOf(p)
	if mgr != n.id {
		return mgr
	}
	owner := pg.owner
	if write {
		pg.owner = n.id
	}
	return owner
}

// invalidateAll sends invalidations and waits for every acknowledgement.
func (n *Node) invalidateAll(p int, members []gaddr.NodeID) error {
	body, err := wire.MarshalInto(&invalMsg{Page: p})
	if err != nil {
		return err
	}
	for _, m := range members {
		if m == n.id {
			continue
		}
		if _, err := n.ep.Call(m, procInvalidate, body); err != nil {
			return fmt.Errorf("ivy: invalidate page %d at node %d: %w", p, m, err)
		}
		n.counts.Inc("invalidations_sent")
	}
	return nil
}

func copysetSlice(m map[gaddr.NodeID]struct{}) []gaddr.NodeID {
	out := make([]gaddr.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// --- handlers ---

// handleReadFault runs at a manager (fixed modes) or along the hint chain
// (dynamic): forward until the owner is reached, then serve a copy.
func (n *Node) handleReadFault(rc *rpc.Ctx) {
	var msg faultMsg
	if err := wire.UnmarshalFrom(rc.Body, &msg); err != nil {
		rc.Reply(nil, err)
		return
	}
	n.servePage(rc, &msg, false)
}

// handleWriteFault transfers ownership to the requester.
func (n *Node) handleWriteFault(rc *rpc.Ctx) {
	var msg faultMsg
	if err := wire.UnmarshalFrom(rc.Body, &msg); err != nil {
		rc.Reply(nil, err)
		return
	}
	n.servePage(rc, &msg, true)
}

// servePage either serves the fault from local ownership or forwards it
// toward the owner.
func (n *Node) servePage(rc *rpc.Ctx, msg *faultMsg, write bool) {
	if msg.Page < 0 || msg.Page >= n.cfg.NumPages {
		rc.Reply(nil, fmt.Errorf("ivy: no such page %d", msg.Page))
		return
	}
	if msg.Hops > 4*n.cfg.Nodes+8 {
		rc.Reply(nil, fmt.Errorf("ivy: fault for page %d lost after %d hops", msg.Page, msg.Hops))
		return
	}
	pg := n.pages[msg.Page]
	pg.mu.Lock()

	// Wait while a local fault is in flight (we may be about to become the
	// owner this request needs).
	for pg.busy != busyNone {
		pg.cond.Wait()
	}

	if !pg.owned {
		// Not the owner: forward along what we know.
		var next gaddr.NodeID
		switch n.cfg.Manager {
		case DynamicDistributed:
			next = pg.owner
			if write {
				// Li's dynamic algorithm: nodes on a write-fault path
				// point their hint at the requester, the owner-to-be.
				pg.owner = msg.Requester
			}
		default:
			// Manager node consults its owner table; a non-manager,
			// non-owner node can only bounce to the manager.
			if n.id == n.managerOf(msg.Page) {
				next = pg.owner
				if write {
					pg.owner = msg.Requester
				}
			} else {
				next = n.managerOf(msg.Page)
			}
		}
		pg.mu.Unlock()
		if next == n.id || next == msg.Requester && !write {
			rc.Reply(nil, fmt.Errorf("ivy: page %d ownership hint loops at node %d", msg.Page, n.id))
			return
		}
		msg.Hops++
		body, err := wire.MarshalInto(msg)
		if err != nil {
			rc.Reply(nil, err)
			return
		}
		proc := procReadFault
		if write {
			proc = procWriteFault
		}
		n.counts.Inc("faults_forwarded")
		if err := rc.Forward(next, proc, body); err != nil {
			n.counts.Inc("forward_failed")
		}
		return
	}

	// We own the page: serve.
	if write {
		// Transfer ownership: hand over data + copyset, drop our copy. If
		// the requester holds a valid read copy (it is in our copyset), the
		// data need not travel — Li's upgrade optimization.
		reply := faultReply{
			Copyset: copysetSlice(pg.copyset),
			Owner:   msg.Requester,
		}
		_, inCopyset := pg.copyset[msg.Requester]
		if !msg.HaveCopy || !inCopyset {
			reply.Data = pg.data
		} else {
			n.counts.Inc("upgrade_transfers_avoided")
		}
		pg.data = nil
		pg.state = pageInvalid
		pg.owned = false
		pg.copyset = nil
		pg.owner = msg.Requester
		pg.mu.Unlock()
		n.counts.Inc("ownership_transfers")
		body, err := wire.MarshalInto(&reply)
		rc.Reply(body, err)
		return
	}

	// Read service: downgrade to read (SWMR), remember the new reader.
	if pg.state == pageWrite {
		pg.state = pageRead
	}
	pg.copyset[msg.Requester] = struct{}{}
	reply := faultReply{Data: append([]byte(nil), pg.data...), Owner: n.id}
	pg.mu.Unlock()
	n.counts.Inc("read_services")
	body, err := wire.MarshalInto(&reply)
	rc.Reply(body, err)
}

// handleInvalidate drops a read copy. An invalidation that races a local
// *read* fault waits for it (otherwise the late page reply would resurrect
// stale data); one racing a local *write* fault applies immediately — the
// write fault is about to replace the data anyway, and waiting would
// deadlock the ownership transfer that triggered the invalidation.
func (n *Node) handleInvalidate(rc *rpc.Ctx) {
	var msg invalMsg
	if err := wire.UnmarshalFrom(rc.Body, &msg); err != nil {
		rc.Reply(nil, err)
		return
	}
	pg := n.pages[msg.Page]
	pg.mu.Lock()
	for pg.busy == busyReadFault {
		pg.cond.Wait()
	}
	if !pg.owned && pg.state != pageInvalid {
		pg.state = pageInvalid
		pg.data = nil
		n.counts.Inc("invalidations_applied")
	}
	pg.mu.Unlock()
	rc.Reply(nil, nil)
}
