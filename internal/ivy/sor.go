package ivy

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// This file implements Red/Black SOR directly on the page-based DSM — the
// experiment the Amber paper could not run (§6: "we have not implemented
// this application under a system with a page-oriented distributed virtual
// memory, so it is impossible to make exact comparisons"). With both systems
// in one repository the comparison becomes measurable: the harness runs the
// same grid on Amber objects and on Ivy pages and counts the communication
// each incurs.
//
// The Ivy program follows the discipline a careful SVM programmer would use
// (§6's closing discussion): the grid is laid out row-major so each worker's
// strip occupies its own pages, workers communicate only through the
// boundary rows, and iteration synchronization uses a small coordination
// page. Row padding to page boundaries (avoiding false sharing) is the
// programmer's job, exactly as the paper warns.

// SORConfig describes a DSM SOR run.
type SORConfig struct {
	Rows, Cols int
	Omega      float64
	Eps        float64
	MaxIters   int
	// Workers is the number of worker processes, one per node.
	Workers int
	// PageSize for the DSM (0 = 4096).
	PageSize int
	// Manager selects the coherence scheme.
	Manager ManagerKind
}

// SORResult reports the outcome and the communication bill.
type SORResult struct {
	Iters     int
	Grid      [][]float64
	Msgs      int64
	Bytes     int64
	PageStats map[string]int64
}

const f64 = 8

// SolveSOR runs Red/Black SOR over the DSM and returns the converged grid.
// The update order matches the sequential solver in internal/sor, so results
// are directly comparable.
func SolveSOR(cfg SORConfig) (*SORResult, error) {
	if cfg.Rows < 3 || cfg.Cols < 3 {
		return nil, fmt.Errorf("ivy: grid %dx%d too small", cfg.Rows, cfg.Cols)
	}
	if cfg.Omega <= 0 || cfg.Omega >= 2 {
		return nil, fmt.Errorf("ivy: omega %g outside (0,2)", cfg.Omega)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	interior := cfg.Rows - 2
	if cfg.Workers > interior {
		return nil, fmt.Errorf("ivy: %d workers over %d interior rows", cfg.Workers, interior)
	}

	// Layout: each grid row is padded to a whole number of pages so rows
	// never share a page (the §4.2 data-structuring burden, paid here by
	// the programmer). A trailing coordination region holds the reduction
	// slots.
	rowBytes := ((cfg.Cols*f64 + cfg.PageSize - 1) / cfg.PageSize) * cfg.PageSize
	gridBytes := rowBytes * cfg.Rows
	// Reduction slots are padded to one page per worker — more programmer-
	// managed layout, avoiding false sharing among the reporters (§4.2).
	coordBase := gridBytes
	numPages := gridBytes/cfg.PageSize + cfg.Workers

	sys, err := NewSystem(Config{
		Nodes:    cfg.Workers,
		PageSize: cfg.PageSize,
		NumPages: numPages,
		Manager:  cfg.Manager,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	rowAddr := func(i int) int { return i * rowBytes }

	// Node 0 initializes the boundary (it owns all pages initially).
	init := sys.Node(0)
	writeRow := func(i int, vals []float64) error {
		buf := make([]byte, cfg.Cols*f64)
		for j, v := range vals {
			binary.LittleEndian.PutUint64(buf[j*f64:], math.Float64bits(v))
		}
		return init.Write(rowAddr(i), buf)
	}
	top := make([]float64, cfg.Cols)
	for j := range top {
		top[j] = 100 // the hot edge of sor.DefaultProblem
	}
	if err := writeRow(0, top); err != nil {
		return nil, err
	}
	zero := make([]float64, cfg.Cols)
	for i := 1; i < cfg.Rows; i++ {
		if err := writeRow(i, zero); err != nil {
			return nil, err
		}
	}

	// Partition interior rows among the workers like the Amber driver.
	base := interior / cfg.Workers
	extra := interior % cfg.Workers
	starts := make([]int, cfg.Workers+1)
	starts[0] = 1
	for w := 0; w < cfg.Workers; w++ {
		n := base
		if w < extra {
			n++
		}
		starts[w+1] = starts[w] + n
	}

	// Coordination: per-iteration max-delta slots, one page per worker.
	// The convergence data flows through the DSM (and is charged to the
	// bill); a host-side WaitGroup supplies only the barrier *scheduling*.
	deltaSlot := func(w int) int { return coordBase + w*cfg.PageSize }

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	iterations := 0
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		iterations = iter
		for _, color := range []int{0, 1} {
			wg.Add(cfg.Workers)
			for w := 0; w < cfg.Workers; w++ {
				go func(w int) {
					defer wg.Done()
					n := sys.Node(w)
					maxDelta := 0.0
					for i := starts[w]; i < starts[w+1]; i++ {
						// Read the three rows the stencil touches. Reading
						// whole rows at once is the SVM analogue of the
						// "transfer an entire edge in one invocation"
						// optimization — one fault per page, not per cell.
						up, err := n.Read(rowAddr(i-1), cfg.Cols*f64)
						if err != nil {
							fail(err)
							return
						}
						down, err := n.Read(rowAddr(i+1), cfg.Cols*f64)
						if err != nil {
							fail(err)
							return
						}
						cur, err := n.Read(rowAddr(i), cfg.Cols*f64)
						if err != nil {
							fail(err)
							return
						}
						get := func(b []byte, j int) float64 {
							return math.Float64frombits(binary.LittleEndian.Uint64(b[j*f64:]))
						}
						changed := false
						for j := 1; j < cfg.Cols-1; j++ {
							if (i+j)%2 != color {
								continue
							}
							old := get(cur, j)
							avg := (get(up, j) + get(down, j) + get(cur, j-1) + get(cur, j+1)) / 4
							next := old + cfg.Omega*(avg-old)
							binary.LittleEndian.PutUint64(cur[j*f64:], math.Float64bits(next))
							if d := math.Abs(next - old); d > maxDelta {
								maxDelta = d
							}
							changed = true
						}
						if changed {
							// Write the whole updated row back (one write
							// fault on the row's page if not already owned).
							if err := n.Write(rowAddr(i), cur); err != nil {
								fail(err)
								return
							}
						}
					}
					// Fold this phase's delta into the worker's slot; the
					// red phase maxes with the black phase's value so the
					// convergence test matches the sequential solver's.
					if color == 1 {
						bits, err := n.ReadU64(deltaSlot(w))
						if err != nil {
							fail(err)
							return
						}
						if prev := math.Float64frombits(bits); prev > maxDelta {
							maxDelta = prev
						}
					}
					if err := n.WriteU64(deltaSlot(w), math.Float64bits(maxDelta)); err != nil {
						fail(err)
					}
				}(w)
			}
			wg.Wait()
			if firstErr != nil {
				return nil, firstErr
			}
		}
		// Convergence: node 0 reduces the delta slots through the DSM.
		globalMax := 0.0
		for w := 0; w < cfg.Workers; w++ {
			bits, err := sys.Node(0).ReadU64(deltaSlot(w))
			if err != nil {
				return nil, err
			}
			if d := math.Float64frombits(bits); d > globalMax {
				globalMax = d
			}
		}
		if globalMax < cfg.Eps {
			break
		}
	}

	// Gather the grid (node 0 faults everything in — also counted).
	grid := make([][]float64, cfg.Rows)
	for i := range grid {
		raw, err := sys.Node(0).Read(rowAddr(i), cfg.Cols*f64)
		if err != nil {
			return nil, err
		}
		grid[i] = make([]float64, cfg.Cols)
		for j := range grid[i] {
			grid[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*f64:]))
		}
	}

	res := &SORResult{
		Iters:     iterations,
		Grid:      grid,
		Msgs:      sys.Fabric().Stats().Value("msgs_sent"),
		Bytes:     sys.Fabric().Stats().Value("bytes_sent"),
		PageStats: map[string]int64{},
	}
	for w := 0; w < cfg.Workers; w++ {
		for k, v := range sys.Node(w).Stats().Snapshot() {
			res.PageStats[k] += v
		}
	}
	return res, nil
}
