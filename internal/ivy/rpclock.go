package ivy

import (
	"fmt"
	"sync"

	"amber/internal/rpc"
	"amber/internal/wire"
)

// RPC locks: the fix later versions of Ivy adopted for lock thrashing
// (Amber paper §4.1: "Recent versions of Ivy have handled this problem by
// deviating from the data-shipping model and accessing shared lock
// variables with remote procedure calls"). Node 0 runs a lock server;
// acquiring a lock is one RPC instead of a page ownership transfer. Data
// pages still ship — only the synchronization traffic changes.

const (
	procLockAcquire rpc.Proc = 23
	procLockRelease rpc.Proc = 24
)

type lockMsg struct{ Lock int }

// lockServer serializes grants per lock ID.
type lockServer struct {
	mu    sync.Mutex
	locks map[int]*serverLock
}

type serverLock struct {
	held bool
	q    []func() // deferred grants
}

func newLockServer() *lockServer {
	return &lockServer{locks: make(map[int]*serverLock)}
}

// acquire grants the lock now (calling grant) or queues the grant.
func (ls *lockServer) acquire(id int, grant func()) {
	ls.mu.Lock()
	l := ls.locks[id]
	if l == nil {
		l = &serverLock{}
		ls.locks[id] = l
	}
	if !l.held {
		l.held = true
		ls.mu.Unlock()
		grant()
		return
	}
	l.q = append(l.q, grant)
	ls.mu.Unlock()
}

// release passes the lock to the next waiter or frees it.
func (ls *lockServer) release(id int) error {
	ls.mu.Lock()
	l := ls.locks[id]
	if l == nil || !l.held {
		ls.mu.Unlock()
		return fmt.Errorf("ivy: release of free lock %d", id)
	}
	if len(l.q) > 0 {
		grant := l.q[0]
		l.q = l.q[1:]
		ls.mu.Unlock()
		grant() // ownership transfers directly
		return nil
	}
	l.held = false
	ls.mu.Unlock()
	return nil
}

// installLockServer attaches the server role to node 0 (called from
// newNode).
func (n *Node) installLockServer() {
	if n.id != 0 {
		return
	}
	n.locksrv = newLockServer()
	n.ep.HandleProc(procLockAcquire, func(rc *rpc.Ctx) {
		var msg lockMsg
		if err := wire.UnmarshalFrom(rc.Body, &msg); err != nil {
			rc.Reply(nil, err)
			return
		}
		// Reply is deferred until the lock is granted.
		n.locksrv.acquire(msg.Lock, func() { rc.Reply(nil, nil) })
	})
	n.ep.HandleProc(procLockRelease, func(rc *rpc.Ctx) {
		var msg lockMsg
		if err := wire.UnmarshalFrom(rc.Body, &msg); err != nil {
			rc.Reply(nil, err)
			return
		}
		rc.Reply(nil, n.locksrv.release(msg.Lock))
	})
}

// RPCLockAcquire blocks until lock id is granted by the lock server.
func (n *Node) RPCLockAcquire(id int) error {
	n.counts.Inc("rpc_lock_acquires")
	if n.id == 0 {
		ch := make(chan struct{})
		n.locksrv.acquire(id, func() { close(ch) })
		<-ch
		return nil
	}
	body, err := wire.MarshalInto(&lockMsg{Lock: id})
	if err != nil {
		return err
	}
	_, err = n.ep.Call(0, procLockAcquire, body)
	return err
}

// RPCLockRelease releases lock id at the server.
func (n *Node) RPCLockRelease(id int) error {
	if n.id == 0 {
		return n.locksrv.release(id)
	}
	body, err := wire.MarshalInto(&lockMsg{Lock: id})
	if err != nil {
		return err
	}
	_, err = n.ep.Call(0, procLockRelease, body)
	return err
}
