// Package amber is a Go implementation of the Amber system (Chase, Amador,
// Lazowska, Levy, Littlefield — SOSP 1989): a runtime that lets one parallel
// program run across a network of shared-memory multiprocessor nodes as a
// single machine.
//
// Programs are collections of passive objects in a network-wide shared
// object space. Objects are invoked location-transparently: if the object is
// on another node, the calling thread ships there (function shipping) and
// continues. Placement is explicit — MoveTo, Locate, Attach/Unattach and
// runtime immutability give the program full control of locality, which is
// what makes loosely-coupled performance predictable.
//
// A minimal program:
//
//	cl, _ := amber.NewCluster(amber.ClusterConfig{Nodes: 2, ProcsPerNode: 4})
//	defer cl.Close()
//	cl.Register(&Counter{})
//	ctx := cl.Node(0).Root()
//	ref, _ := ctx.New(&Counter{})
//	ctx.MoveTo(ref, 1)                  // place the object on node 1
//	out, _ := ctx.Invoke(ref, "Add", 5) // thread ships to node 1 and back
//
// User classes are plain Go structs registered with Register; operations are
// their exported methods, optionally taking a *amber.Ctx first parameter for
// runtime services (nested invocation, thread creation, blocking).
// See README.md for the full tour and DESIGN.md for how this implementation
// maps onto the paper.
package amber

import (
	"time"

	"amber/internal/amsync"
	"amber/internal/core"
	"amber/internal/gaddr"
	"amber/internal/sched"
	"amber/internal/transport"
	"amber/internal/wire"
)

// Core type surface (aliases into the runtime).
type (
	// Ref is a reference to an object in the global object space; valid on
	// every node of the cluster.
	Ref = core.Ref
	// Ctx is an Amber thread's execution context; operations receive it as
	// an optional first parameter.
	Ctx = core.Ctx
	// Thread is a handle to a started thread (Start/Join, §2.1).
	Thread = core.Thread
	// Cluster is an in-process Amber deployment.
	Cluster = core.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = core.ClusterConfig
	// Node is one cluster member.
	Node = core.Node
	// NodeID identifies a node.
	NodeID = gaddr.NodeID
	// NetProfile models the network's latency and bandwidth.
	NetProfile = transport.NetProfile
	// Registry maps user classes to dispatch tables; a Cluster owns one.
	Registry = core.Registry
	// MoveGuard lets a class veto migration (see core.MoveGuard).
	MoveGuard = core.MoveGuard
	// AmberDispatch is the opt-in self-dispatch interface: a registered
	// class implementing it routes its own operations (typically a switch on
	// the method name with direct type asserts), bypassing reflection on the
	// invoke hot path. Return ErrNotDispatched for operations the switch
	// does not cover; the runtime's reflective plan handles them with its
	// usual argument-coercion rules. See core.AmberDispatch for the full
	// contract (the args vector is runtime-owned scratch).
	AmberDispatch = core.AmberDispatch
)

// NilRef is the null object reference.
const NilRef = core.NilRef

// Network profiles.
var (
	// Instant injects no network delay (functional testing).
	Instant = transport.Instant
	// Ethernet1989 reproduces the paper's 10 Mbit/s Ethernet + Topaz RPC
	// economics (remote ≈ 3 orders of magnitude dearer than local).
	Ethernet1989 = transport.Ethernet1989
	// FastLAN approximates a modern 10 GbE link.
	FastLAN = transport.FastLAN
)

// Errors (see the core package for semantics).
var (
	ErrNoSuchObject      = core.ErrNoSuchObject
	ErrDeleted           = core.ErrDeleted
	ErrUnknownMethod     = core.ErrUnknownMethod
	ErrUnknownType       = core.ErrUnknownType
	ErrNotMovable        = core.ErrNotMovable
	ErrMoveTimeout       = core.ErrMoveTimeout
	ErrImmutableDelete   = core.ErrImmutableDelete
	ErrRoutingLost       = core.ErrRoutingLost
	ErrBadArgument       = core.ErrBadArgument
	ErrImmutableViolated = core.ErrImmutableViolated
	ErrNotAttached       = core.ErrNotAttached
	// ErrNotDispatched is returned by an AmberDispatch implementation for
	// operations it does not handle; the runtime falls back to reflective
	// dispatch for that call.
	ErrNotDispatched = core.ErrNotDispatched
)

// Failure taxonomy. Every cross-node failure returned by Invoke, MoveTo,
// Locate and Join is errors.Is-matchable against exactly one of these three
// sentinels; no lower-layer (rpc/transport) error ever leaks through the
// public API:
//
//   - ErrTimeout: the request did not complete within its deadline, but the
//     remote node answered a health probe — it is alive, just slow or behind
//     a lossy link. Retrying may succeed; the operation may also have
//     executed (the reply could be what was lost).
//   - ErrNodeDown: the remote node failed a health probe — it has crashed or
//     is unreachable. Whether in-flight operations executed is unknowable
//     until the node restarts. WithRetry makes retries safe here: each
//     attempt carries an idempotency token, so a restarted or slow node
//     executes the operation at most once.
//   - ErrOrphaned: a thread started with StartThread shipped into a node
//     that then went down. Join returns the thread's fate instead of
//     hanging; errors.Is(err, ErrNodeDown) is also true for the wrapped
//     cause.
//
// Errors cross nodes as strings, but sentinel identity is rehydrated on the
// way back — errors.Is keeps working across any number of hops.
var (
	// ErrTimeout: deadline expired but the target node is alive.
	ErrTimeout = core.ErrTimeout
	// ErrNodeDown: the target node is crashed or unreachable.
	ErrNodeDown = core.ErrNodeDown
	// ErrOrphaned: a started thread was lost to a node failure.
	ErrOrphaned = core.ErrOrphaned
)

// Per-call failure-handling options (pass to Invoke — mixed into the
// argument list — or to MoveTo / Locate as trailing arguments):
//
//	out, err := ctx.Invoke(ref, "Add", 5,
//	    amber.WithDeadline(time.Second),
//	    amber.WithRetry(amber.RetryPolicy{MaxAttempts: 3}))
type (
	// CallOption shapes failure handling for one call.
	CallOption = core.CallOption
	// RetryPolicy bounds automatic retries (see WithRetry).
	RetryPolicy = core.RetryPolicy
)

// Asynchronous invocation (Ctx.AsyncInvoke) and continuation shipping
// (Ctx.InvokeChain / Ctx.AsyncInvokeChain). See README §"Asynchronous
// invocation & pipelining" and DESIGN.md §13.
type (
	// Future is the handle returned by Ctx.AsyncInvoke; Join blocks the
	// calling Amber thread (relinquishing its processor slot) until the
	// remote reply lands.
	Future = core.Future
	// ChainStep is one step of an InvokeChain continuation.
	ChainStep = core.ChainStep
)

// ChainPrev, used as an argument inside a ChainStep, is replaced at
// execution time by the previous step's first result — dataflow between
// chain steps without a round trip home.
var ChainPrev = core.ChainPrev

// WithDeadline bounds one call: the call fails with ErrTimeout (node alive)
// or ErrNodeDown (node crashed) when d elapses without a reply. It overrides
// the cluster-wide RPCTimeout for this call only.
func WithDeadline(d time.Duration) CallOption { return core.WithDeadline(d) }

// WithRetry retries a failed remote call with capped exponential backoff.
// Retried requests carry an idempotency token and every attempt reuses the
// same call identity, so the remote node executes the operation at most
// once even when a reply (rather than a request) was lost — the duplicate
// is answered from the callee's dedup window. Retrying stops early when the
// target is probed down and stays down.
func WithRetry(p RetryPolicy) CallOption { return core.WithRetry(p) }

// WithReadOnly declares that this invoke never mutates the object. On a
// cacheable object (Ctx.SetCacheable) a read-only invoke may be served from a
// local reader lease — zero messages while the lease stands — and runs under
// the shared side of the object's coherence lock at the holder. Classes can
// declare whole methods read-only instead by implementing
//
//	func (o *T) AmberReadOnly() []string { return []string{"Get", "Len"} }
//
// The declaration is a promise, not a proof: marking a mutating operation
// read-only yields stale reads on other nodes, never memory corruption.
func WithReadOnly() CallOption { return core.WithReadOnly() }

// NewCluster starts an in-process cluster of cfg.Nodes nodes with
// cfg.ProcsPerNode processor slots each, connected by a fabric with
// cfg.Profile delays. Node 0 hosts the address-space server.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// NewRegistry creates a standalone class registry (to share between
// clusters).
func NewRegistry() *Registry { return core.NewRegistry() }

// Call invokes an operation and returns its first result — the common
// single-result convenience over Ctx.Invoke. Like Invoke, CallOptions may be
// mixed into the argument list (they are filtered out before dispatch), and
// the call routes through the same funnel as Ctx.Invoke — deadlines, retries
// and anomaly classification behave identically:
//
//	v, err := amber.Call(ctx, ref, "Get", amber.WithDeadline(time.Second))
func Call(ctx *Ctx, obj Ref, method string, args ...any) (any, error) {
	out, err := ctx.Invoke(obj, method, args...)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out[0], nil
}

// RegisterWireType makes a concrete type transmissible inside interface-
// typed argument and result slots (gob registration). Object classes are
// registered automatically by Cluster.Register.
func RegisterWireType(v any) { wire.Register(v) }

// Synchronization classes (§2.2): mobile, remotely-invocable objects.
type (
	// Lock is a relinquishing mutual-exclusion lock.
	Lock = amsync.Lock
	// SpinLock is a non-relinquishing lock.
	SpinLock = amsync.SpinLock
	// RWLock is a writer-preferring readers/writer lock.
	RWLock = amsync.RWLock
	// Barrier synchronizes a fixed party of threads, reusable by epoch.
	Barrier = amsync.Barrier
	// Monitor is the mutual-exclusion half of a monitor.
	Monitor = amsync.Monitor
	// CondVar is a condition variable bound to a Monitor.
	CondVar = amsync.CondVar
	// Semaphore is a counting semaphore.
	Semaphore = amsync.Semaphore
	// Event is a one-shot broadcast flag.
	Event = amsync.Event
)

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier { return amsync.NewBarrier(n) }

// NewCondVar returns a condition variable for the given monitor object.
func NewCondVar(mon Ref) *CondVar { return amsync.NewCondVar(mon) }

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(n int) *Semaphore { return amsync.NewSemaphore(n) }

// RegisterSyncClasses registers every synchronization class with a cluster
// (or registry).
func RegisterSyncClasses(r interface{ Register(v any) error }) error {
	return amsync.RegisterAll(r)
}

// Scheduling policies (§2.1): install with Node.Scheduler().SetPolicy at any
// time. Each constructor builds one per-slot queue instance; SetPolicy and
// the cluster/node Policy config fields take the constructor itself.
var (
	// DequePolicy is the default: a bounded per-slot deque, newest-first
	// for the owning slot and oldest-first for work stealing.
	DequePolicy = sched.NewDeque
	// FIFOPolicy runs threads in arrival order.
	FIFOPolicy = sched.NewFIFO
	// LIFOPolicy runs the most recently ready thread first.
	LIFOPolicy = sched.NewLIFO
	// PriorityPolicy runs the highest-priority thread first.
	PriorityPolicy = sched.NewPriority
	// AdaptivePolicy is a multilevel-feedback discipline that demotes
	// threads burning whole timeslices and favours blocking ones.
	AdaptivePolicy = sched.NewAdaptive
)
