// amber-sor runs the paper's Red/Black SOR application (§6) on the real
// runtime, either as a single verified solve or as a configuration sweep,
// and can print the Figure 1 program structure.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"amber"
	"amber/internal/sor"
)

func main() {
	var (
		rows      = flag.Int("rows", 66, "grid rows (including boundary)")
		cols      = flag.Int("cols", 66, "grid columns (including boundary)")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		procs     = flag.Int("procs", 2, "processors per node")
		sections  = flag.Int("sections", 0, "sections (0 = one per node)")
		overlap   = flag.Bool("overlap", true, "overlap edge exchange with compute")
		omega     = flag.Float64("omega", 1.5, "over-relaxation factor")
		eps       = flag.Float64("eps", 1e-4, "convergence threshold")
		iters     = flag.Int("max-iters", 20000, "iteration cap")
		sweep     = flag.Bool("sweep", false, "run a node×proc sweep instead of one solve")
		structure = flag.Bool("print-structure", false, "print the Figure 1 structure and exit")
	)
	flag.Parse()

	if *structure {
		s := *sections
		if s == 0 {
			s = *nodes
		}
		fmt.Print(sor.PrintStructure(s))
		return
	}

	p := sor.DefaultProblem(*rows, *cols)
	want, wantIters, err := sor.SolveSequential(p, *omega, *eps, *iters)
	if err != nil {
		log.Fatal(err)
	}

	run := func(nodes, procs, secs int, overlap bool) {
		cl, err := amber.NewCluster(amber.ClusterConfig{
			Nodes: nodes, ProcsPerNode: procs, Registry: amber.NewRegistry(),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		if err := sor.RegisterAll(cl); err != nil {
			log.Fatal(err)
		}
		res, err := sor.RunDistributed(cl, sor.Config{
			Problem: p, Omega: *omega, Eps: *eps, MaxIters: *iters,
			Sections: secs, Overlap: overlap, ComputeThreads: procs,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if d := sor.MaxAbsDiff(want, res.Grid); d > 1e-9 || res.Iters != wantIters {
			status = fmt.Sprintf("MISMATCH (Δ=%g, iters %d vs %d)", d, res.Iters, wantIters)
		}
		label := fmt.Sprintf("%dNx%dP", nodes, procs)
		if !overlap {
			label += " (no overlap)"
		}
		fmt.Printf("%-22s sections=%-3d iters=%-6d wall=%-12v msgs=%-8d verify=%s\n",
			label, secs, res.Iters, res.Elapsed.Round(1e6),
			cl.NetStats().Value("msgs_sent"), status)
	}

	fmt.Printf("grid %dx%d, omega=%.2f, eps=%g (sequential: %d iterations)\n",
		*rows, *cols, *omega, *eps, wantIters)
	fmt.Println(strings.Repeat("-", 96))
	if !*sweep {
		secs := *sections
		if secs == 0 {
			secs = *nodes
		}
		run(*nodes, *procs, secs, *overlap)
		return
	}
	for _, c := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 1}, {4, 2}} {
		secs := *sections
		if secs == 0 {
			secs = c[0]
		}
		run(c[0], c[1], secs, true)
	}
	run(4, 2, 4, false)
}
