// amber-load is an open-loop load harness for the async invocation path: a
// generator issues AsyncInvokes at a fixed arrival rate — independent of how
// fast replies come back, which is what makes it open-loop — against counters
// spread across the cluster, and reports latency quantiles (p50/p99/p999) and
// goodput. An admission cap (-clients) bounds outstanding requests: arrivals
// beyond the cap are shed and counted rather than queued, so the harness
// measures how the pipeline degrades under overload instead of deadlocking
// behind it.
//
// Two deployment modes:
//
//   - In-process (default): spins up an N-node cluster over the delay-modelled
//     fabric in this process.
//
//     amber-load -nodes 3 -procs 4 -objects 64 -clients 256 -rate 20000 -duration 5s
//
//   - Join (-peers given): joins a running amberd cluster over TCP as an extra
//     node and drives load at the existing nodes. The amberd peer lists must
//     include this node's ID and address so detached replies route back.
//
//     amber-load -node 3 -listen :7703 -peers 0=localhost:7700,1=localhost:7701,2=localhost:7702 \
//     -clients 2000 -rate 50000 -duration 3s -deadline 500ms
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amber/internal/core"
	"amber/internal/gaddr"
	"amber/internal/transport"
)

// DemoCounter matches amberd's demonstration class by construction (same
// package name, same shape), so the two binaries agree on the wire type name
// "main.DemoCounter" and a joined amber-load can invoke counters served by
// amberd nodes.
type DemoCounter struct{ N int }

// Add increments and returns the counter.
func (c *DemoCounter) Add(n int) int { c.N += n; return c.N }

// Get reads the counter without mutating it.
func (c *DemoCounter) Get() int { return c.N }

// Where reports the executing node.
func (c *DemoCounter) Where(ctx *core.Ctx) gaddr.NodeID { return ctx.NodeID() }

// AmberReadOnly declares the non-mutating methods, which lets the runtime
// serve them from reader-lease copies when a counter is marked cacheable.
func (c *DemoCounter) AmberReadOnly() []string { return []string{"Get", "Where"} }

// Dispatch implements core.AmberDispatch: the counter routes its own
// operations with a switch, skipping both reflection and the trampoline
// corpus. Calls needing argument coercion (an int64 from a hand-rolled
// client, say) return ErrNotDispatched and take the runtime's reflective
// plan, so observable behavior is unchanged. Must stay identical to the
// amberd twin — the two binaries share the wire name "main.DemoCounter".
func (c *DemoCounter) Dispatch(ctx *core.Ctx, method string, args []any) ([]any, error) {
	switch method {
	case "Add":
		if len(args) == 1 {
			if n, ok := args[0].(int); ok {
				c.N += n
				return []any{c.N}, nil
			}
		}
	case "Get":
		if len(args) == 0 {
			return []any{c.N}, nil
		}
	case "Where":
		if len(args) == 0 {
			return []any{ctx.NodeID()}, nil
		}
	}
	return nil, core.ErrNotDispatched
}

// recorder collects completion latencies. OnDone callbacks run on transport
// delivery goroutines and must not block; a short mutex-guarded append is the
// bounded kind of work they allow.
type recorder struct {
	mu  sync.Mutex
	lat []int64 // nanoseconds
}

func (r *recorder) observe(d time.Duration) {
	r.mu.Lock()
	r.lat = append(r.lat, int64(d))
	r.mu.Unlock()
}

// quantiles sorts the samples and returns p50/p99/p999.
func (r *recorder) quantiles() (p50, p99, p999 time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.lat)
	if n == 0 {
		return 0, 0, 0
	}
	sort.Slice(r.lat, func(i, j int) bool { return r.lat[i] < r.lat[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(n))
		if i >= n {
			i = n - 1
		}
		return time.Duration(r.lat[i])
	}
	return at(0.50), at(0.99), at(0.999)
}

func main() {
	var (
		// In-process mode.
		nodes   = flag.Int("nodes", 3, "in-process cluster size (ignored with -peers)")
		profile = flag.String("profile", "instant", "in-process network model: instant, ethernet, fastlan")
		window  = flag.Int("window", 0, "per-peer pipeline window, on-the-wire cap (0 = default)")
		depth   = flag.Int("depth", 0, "per-peer pipeline depth, total outstanding cap (0 = 4 × window)")
		// Join mode.
		nodeID  = flag.Int("node", 3, "this node's ID when joining a live cluster")
		listen  = flag.String("listen", ":7703", "TCP listen address when joining")
		peerArg = flag.String("peers", "", "comma-separated peer list id=host:port,... (selects join mode)")
		retries = flag.Int("retries", 30, "startup retries while the joined cluster comes up")
		// Workload shape.
		procs     = flag.Int("procs", 4, "processor slots on the driving node")
		objects   = flag.Int("objects", 64, "target counters, spread round-robin across remote nodes")
		clients   = flag.Int("clients", 256, "admission cap: max outstanding invokes before arrivals are shed")
		rate      = flag.Int("rate", 20000, "open-loop arrival rate, invokes/second")
		duration  = flag.Duration("duration", 5*time.Second, "generator run time")
		deadline  = flag.Duration("deadline", time.Second, "per-call deadline (0 = unbounded; overload then holds slots forever)")
		workload  = flag.String("workload", "async", "workload: async (remote Where churn) or readmostly (leased reads + writes on cacheable counters)")
		readRatio = flag.Float64("readratio", 0.9, "readmostly: fraction of arrivals that are reads (rest are writes)")
		leaseTTL  = flag.Duration("leasettl", 0, "reader-lease TTL for the in-process cluster (0 = node default)")
	)
	flag.Parse()
	if *workload != "async" && *workload != "readmostly" {
		log.Fatalf("unknown -workload %q (want async or readmostly)", *workload)
	}
	if *readRatio < 0 || *readRatio > 1 {
		log.Fatal("-readratio must be in [0, 1]")
	}

	reg := core.NewRegistry()
	if err := reg.Register(&DemoCounter{}); err != nil {
		log.Fatal(err)
	}

	var (
		ctx   *core.Ctx
		dests []gaddr.NodeID
		mode  string
	)
	if *peerArg == "" {
		mode = "in-process"
		prof := transport.Instant
		switch *profile {
		case "instant":
		case "ethernet":
			prof = transport.Ethernet1989
		case "fastlan":
			prof = transport.FastLAN
		default:
			log.Fatalf("unknown -profile %q (want instant, ethernet or fastlan)", *profile)
		}
		if *nodes < 2 {
			log.Fatal("-nodes must be at least 2: the harness drives remote invokes")
		}
		cl, err := core.NewCluster(core.ClusterConfig{
			Nodes:          *nodes,
			ProcsPerNode:   *procs,
			Profile:        prof,
			Registry:       reg,
			PipelineWindow: *window,
			PipelineDepth:  *depth,
			LeaseTTL:       *leaseTTL,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		ctx = cl.Node(0).Root()
		for i := 1; i < *nodes; i++ {
			dests = append(dests, gaddr.NodeID(i))
		}
	} else {
		mode = "join"
		peers := make(map[gaddr.NodeID]string)
		for _, kv := range strings.Split(*peerArg, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad peer %q (want id=host:port)", kv)
			}
			id, err := strconv.Atoi(parts[0])
			if err != nil {
				log.Fatalf("bad peer id %q", parts[0])
			}
			peers[gaddr.NodeID(id)] = parts[1]
			dests = append(dests, gaddr.NodeID(id))
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self:   gaddr.NodeID(*nodeID),
			Listen: *listen,
			Peers:  peers,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		cfg := core.NodeConfig{
			ID: gaddr.NodeID(*nodeID), Procs: *procs, ServerNode: 0,
			Generation:     uint64(time.Now().UnixNano()),
			PipelineWindow: *window,
			PipelineDepth:  *depth,
		}
		var node *core.Node
		for attempt := 0; ; attempt++ {
			node, err = core.NewNode(cfg, reg, tr, nil)
			if err == nil {
				break
			}
			if attempt >= *retries {
				log.Fatalf("node %d failed to join: %v", *nodeID, err)
			}
			time.Sleep(time.Second)
		}
		defer node.Close()
		ctx = node.Root()
	}

	// Spread the targets round-robin across the destination nodes so one peer
	// pipeline doesn't carry the whole arrival stream.
	targets := make([]core.Ref, *objects)
	for i := range targets {
		ref, err := ctx.New(&DemoCounter{})
		if err != nil {
			log.Fatal(err)
		}
		if err := ctx.MoveTo(ref, dests[i%len(dests)]); err != nil {
			log.Fatalf("placing target %d: %v", i, err)
		}
		targets[i] = ref
	}
	if *workload == "readmostly" {
		// Cacheable targets: the first remote read of each counter pulls a
		// reader lease; subsequent reads within the TTL are zero-message local
		// hits until a write fences them.
		for i, ref := range targets {
			if err := ctx.SetCacheable(ref); err != nil {
				log.Fatalf("marking target %d cacheable: %v", i, err)
			}
		}
	}
	fmt.Printf("amber-load: mode=%s workload=%s dests=%d objects=%d clients=%d rate=%d/s duration=%v deadline=%v readratio=%.2f\n",
		mode, *workload, len(dests), *objects, *clients, *rate, *duration, *deadline, *readRatio)

	var (
		rec         recorder // reads in readmostly mode; everything otherwise
		recWrite    recorder // writes in readmostly mode
		outstanding atomic.Int64
		sent        atomic.Int64
		shed        atomic.Int64
		okC         atomic.Int64
		errC        atomic.Int64
		readsC      atomic.Int64
		writesC     atomic.Int64
	)
	var opts []core.CallOption
	if *deadline > 0 {
		opts = append(opts, core.WithDeadline(*deadline))
	}

	// Open-loop generator: arrivals are paced by the clock, never by
	// completions. When the generator falls behind its schedule (Sleep
	// granularity, a backpressured AsyncInvoke) it issues back-to-back until
	// caught up rather than silently lowering the offered rate.
	interval := time.Duration(int64(time.Second) / int64(*rate))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	begin := time.Now()
	end := begin.Add(*duration)
	next := begin
	for i := 0; ; i++ {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		if outstanding.Load() >= int64(*clients) {
			shed.Add(1)
			continue
		}
		outstanding.Add(1)
		sent.Add(1)
		// Per-arrival op: the async workload hammers Where; readmostly mixes
		// leased Gets with Adds at the configured ratio (deterministic modular
		// schedule, so a run is reproducible).
		method := "Where"
		r := &rec
		var extra []any
		if *workload == "readmostly" {
			if float64(i%1000) < *readRatio*1000 {
				method = "Get"
				readsC.Add(1)
			} else {
				method = "Add"
				extra = []any{1}
				r = &recWrite
				writesC.Add(1)
			}
		}
		args := make([]any, 0, len(extra)+len(opts))
		args = append(args, extra...)
		for _, o := range opts {
			args = append(args, o)
		}
		start := time.Now()
		f := ctx.AsyncInvoke(targets[i%len(targets)], method, args...)
		f.OnDone(func(fu *core.Future) {
			if _, err := fu.Join(nil); err != nil {
				errC.Add(1)
			} else {
				okC.Add(1)
				r.observe(time.Since(start))
			}
			outstanding.Add(-1)
		})
	}
	genElapsed := time.Since(begin)

	// Drain: everything in flight has a deadline (unless -deadline 0), so the
	// wait is bounded; the grace period covers the probe that classifies an
	// expiry as ErrTimeout vs ErrNodeDown.
	grace := 2 * *deadline
	if grace < 2*time.Second {
		grace = 2 * time.Second
	}
	drainEnd := time.Now().Add(grace)
	for outstanding.Load() > 0 && time.Now().Before(drainEnd) {
		time.Sleep(10 * time.Millisecond)
	}

	ok, errs := okC.Load(), errC.Load()
	p50, p99, p999 := rec.quantiles()
	goodput := float64(ok) / genElapsed.Seconds()
	fmt.Printf("sent=%d ok=%d errors=%d shed=%d outstanding_end=%d\n",
		sent.Load(), ok, errs, shed.Load(), outstanding.Load())
	if *workload == "readmostly" {
		wp50, wp99, wp999 := recWrite.quantiles()
		fmt.Printf("reads=%d read  latency p50=%v p99=%v p999=%v\n", readsC.Load(),
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
		fmt.Printf("writes=%d write latency p50=%v p99=%v p999=%v\n", writesC.Load(),
			wp50.Round(time.Microsecond), wp99.Round(time.Microsecond), wp999.Round(time.Microsecond))
	} else {
		fmt.Printf("latency p50=%v p99=%v p999=%v\n",
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
	}
	fmt.Printf("goodput %.1f ops/s\n", goodput)
	if ok == 0 {
		log.Fatal("amber-load: zero goodput — no invoke completed successfully")
	}
}
