// amber-top is a live terminal viewer for a running Amber cluster: it polls
// one amberd's /cluster endpoint (which fans the pull out to every peer over
// procStatsPull) and renders a top(1)-style refresh — per-node invoke rates
// and latency quantiles, run-queue depths, steal and heat-migration activity,
// replica-cache occupancy, then the merged fleet totals, hottest objects and
// busiest internode links.
//
//	amberd -node 0 ... -debug-addr 127.0.0.1:7780 &
//	amber-top -addr 127.0.0.1:7780
//
// Any node's debug address works: every node can aggregate the fleet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"amber/internal/core"
)

func fetch(addr string, topN int) (*core.FleetStats, error) {
	url := fmt.Sprintf("http://%s/cluster?format=json&top=%d", addr, topN)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var f core.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &f, nil
}

// dur renders a duration compactly for a fixed-width column ("—" when the
// histogram is empty).
func dur(d time.Duration) string {
	if d == 0 {
		return "—"
	}
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func render(w *strings.Builder, f *core.FleetStats, addr string) {
	at := time.Unix(0, f.CollectedNs).Format("15:04:05")
	fmt.Fprintf(w, "amber-top — %s — %d/%d nodes reporting — %s\n\n",
		addr, f.Reporting(), len(f.Nodes), at)

	fmt.Fprintf(w, "%-5s %10s %10s %10s %9s %9s %7s %7s %7s %9s %7s\n",
		"NODE", "LOCAL", "SHIPPED", "EXEC'D", "REMOTE p50", "p99", "RUNQ", "STEALS", "MOVES", "REPLICAS", "LEASES")
	for _, ns := range f.Nodes {
		if ns.Err != "" {
			fmt.Fprintf(w, "%-5d DOWN: %s\n", ns.Node, ns.Err)
			continue
		}
		node := ns.Sets["node"]
		sched := ns.Sets["sched"]
		remote := node.Histograms["invoke_remote_ns"]
		runq := fmt.Sprintf("%d", sum(ns.Queues))
		if ns.Overflow > 0 {
			runq += fmt.Sprintf("+%d", ns.Overflow)
		}
		fmt.Fprintf(w, "%-5d %10d %10d %10d %9s %9s %7s %7d %7d %9d %7d\n",
			ns.Node,
			node.Counters["invokes_local"],
			node.Counters["invokes_shipped"],
			node.Counters["invokes_executed_for_remote"],
			dur(remote.Quantile(0.50)), dur(remote.Quantile(0.99)),
			runq,
			sched.Counters["steals"],
			node.Counters["heat_moves"],
			ns.Extras["objspace_replicas"],
			ns.Extras["objspace_leases"])
	}

	merged := f.Merged["node"]
	remote := merged.Histograms["invoke_remote_ns"]
	exec := merged.Histograms["invoke_exec_ns"]
	fmt.Fprintf(w, "\nfleet: %d local + %d shipped invokes; remote p50 %s p99 %s (exec leg p99 %s); %d anomalies (%d node-down, %d retry, %d deadline); %d captures\n",
		merged.Counters["invokes_local"], merged.Counters["invokes_shipped"],
		dur(remote.Quantile(0.50)), dur(remote.Quantile(0.99)), dur(exec.Quantile(0.99)),
		merged.Counters["anomalies_node_down"]+merged.Counters["anomalies_retry_exhausted"]+merged.Counters["anomalies_deadline"],
		merged.Counters["anomalies_node_down"], merged.Counters["anomalies_retry_exhausted"], merged.Counters["anomalies_deadline"],
		f.MergedExtras["captures"])

	if len(f.TopObjects) > 0 {
		fmt.Fprintf(w, "\nhot objects (EWMA invokes/tick):\n")
		for _, o := range f.TopObjects {
			pull := ""
			if o.TopRate > 0 {
				pull = fmt.Sprintf("  hottest caller node %d (%.1f)", o.Top, o.TopRate)
			}
			fmt.Fprintf(w, "  %#x @ node %-3d %8.1f%s\n", uint64(o.Obj), o.Node, o.Rate, pull)
		}
	}
	if len(f.Links) > 0 {
		fmt.Fprintf(w, "\nbusiest links (caller → holder):\n")
		for _, l := range f.Links {
			fmt.Fprintf(w, "  node %d → node %-3d %8.1f\n", l.From, l.To, l.Rate)
		}
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7780", "debug address of any amberd in the cluster")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		topN     = flag.Int("top", 10, "rows in the hot-object and link tables")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	)
	flag.Parse()

	for {
		f, err := fetch(*addr, *topN)
		if err != nil {
			if *once {
				log.Fatal(err)
			}
			fmt.Printf("\x1b[H\x1b[2Jamber-top — %s — unreachable: %v\n", *addr, err)
			time.Sleep(*interval)
			continue
		}
		var b strings.Builder
		render(&b, f, *addr)
		if *once {
			os.Stdout.WriteString(b.String())
			return
		}
		// Home + clear-to-end rather than full clear: no flicker.
		fmt.Print("\x1b[H\x1b[2J" + b.String())
		time.Sleep(*interval)
	}
}
