// amberd runs one Amber node over real TCP, for multi-process (or
// multi-machine) deployments. All processes must run this same binary — the
// same requirement the original system had ("each task is an execution of
// the same program image", §3) — so that class registries agree.
//
// A 3-node cluster on one machine:
//
//	amberd -node 0 -listen :7700 -peers 1=localhost:7701,2=localhost:7702 &
//	amberd -node 1 -listen :7701 -peers 0=localhost:7700,2=localhost:7702 &
//	amberd -node 2 -listen :7702 -peers 0=localhost:7700,1=localhost:7701 -drive
//
// The -drive node runs a demonstration workload (creating, migrating and
// invoking objects across the cluster) and prints measured latencies; the
// others serve until killed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"amber/internal/core"
	"amber/internal/debug"
	"amber/internal/gaddr"
	"amber/internal/sor"
	"amber/internal/stats"
	"amber/internal/trace"
	"amber/internal/transport"
	"amber/internal/wire"
)

// DemoCounter is the demonstration class; identical in every process by
// construction (same binary).
type DemoCounter struct{ N int }

// Add increments and returns the counter.
func (c *DemoCounter) Add(n int) int { c.N += n; return c.N }

// Get reads the counter without mutating it.
func (c *DemoCounter) Get() int { return c.N }

// Where reports the executing node.
func (c *DemoCounter) Where(ctx *core.Ctx) gaddr.NodeID { return ctx.NodeID() }

// AmberReadOnly declares the non-mutating methods so a joined amber-load's
// readmostly workload can serve them from reader-lease copies.
func (c *DemoCounter) AmberReadOnly() []string { return []string{"Get", "Where"} }

// Dispatch implements core.AmberDispatch: the counter routes its own
// operations with a switch, skipping both reflection and the trampoline
// corpus. Calls needing argument coercion (an int64 from a hand-rolled
// client, say) return ErrNotDispatched and take the runtime's reflective
// plan, so observable behavior is unchanged. Must stay identical to the
// amber-load twin — the two binaries share the wire name "main.DemoCounter".
func (c *DemoCounter) Dispatch(ctx *core.Ctx, method string, args []any) ([]any, error) {
	switch method {
	case "Add":
		if len(args) == 1 {
			if n, ok := args[0].(int); ok {
				c.N += n
				return []any{c.N}, nil
			}
		}
	case "Get":
		if len(args) == 0 {
			return []any{c.N}, nil
		}
	case "Where":
		if len(args) == 0 {
			return []any{ctx.NodeID()}, nil
		}
	}
	return nil, core.ErrNotDispatched
}

// metricFamilies groups this process's stat sets for the shared Prometheus
// text renderer — the same families back both the stdout status block and
// the /metrics endpoint, so the two can never disagree about a counter.
func metricFamilies(tr *transport.TCP, node *core.Node) []stats.Family {
	return []stats.Family{
		{Name: "node", Set: node.Stats()},
		{Name: "sched", Set: node.Scheduler().Stats()},
		{Name: "rpc", Set: node.RPCStats()},
		{Name: "transport", Set: tr.Stats()},
	}
}

// extraMetrics are process-wide gauges that live outside any stats set: the
// wire codec's gob-fallback count, the sharded object space's aggregate
// counters (descriptor/hint population, stripe lock contention, evictions),
// instantaneous run-queue depths, heat-table occupancy, trace-ring fill, and
// the flight recorder's trigger counters.
func extraMetrics(node *core.Node) []stats.ExtraMetric {
	out := []stats.ExtraMetric{{Name: "wire_gob_fallbacks", Value: wire.GobFallbacks()}}
	out = append(out, stats.MapMetrics("objspace_", node.SpaceStats())...)
	slots, overflow := node.Scheduler().QueueDepths()
	for i, d := range slots {
		out = append(out, stats.ExtraMetric{Name: fmt.Sprintf("sched_runq_slot%d", i), Value: int64(d)})
	}
	out = append(out,
		stats.ExtraMetric{Name: "sched_runq_overflow", Value: int64(overflow)},
		stats.ExtraMetric{Name: "heat_tracked", Value: int64(node.HeatTracked())},
		stats.ExtraMetric{Name: "trace_buffered", Value: int64(node.Tracer().Len())},
		stats.ExtraMetric{Name: "trace_dropped", Value: int64(node.Tracer().Dropped())},
	)
	if c := node.Capture(); c != nil {
		out = append(out, stats.MapMetrics("", c.Stats())...)
	}
	return out
}

// printStatus renders every counter and latency histogram (transport byte
// counters per message kind, hint-cache hits/misses/retries, invoke and move
// latency quantiles, …) in the same format /metrics serves over HTTP.
func printStatus(tr *transport.TCP, node *core.Node) {
	fmt.Print(stats.RenderMetrics(extraMetrics(node), metricFamilies(tr, node)...))
}

// dumpTrace collects the cluster-wide thread-journey trace (this node's ring
// plus a procTraceDump from every peer) and writes Chrome trace_event JSON.
func dumpTrace(node *core.Node, peers []gaddr.NodeID, path string) {
	evs, err := node.CollectTrace(peers, 0)
	if err != nil {
		log.Printf("trace collection: %v", err)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("trace output: %v", err)
		return
	}
	defer f.Close()
	if err := trace.WriteChrome(f, evs); err != nil {
		log.Printf("trace output: %v", err)
		return
	}
	fmt.Printf("wrote %d trace events to %s (load in chrome://tracing or https://ui.perfetto.dev)\n",
		len(evs), path)
}

func main() {
	var (
		nodeID      = flag.Int("node", 0, "this node's ID (node 0 hosts the address-space server)")
		listen      = flag.String("listen", ":7700", "TCP listen address")
		peerArg     = flag.String("peers", "", "comma-separated peer list: id=host:port,...")
		procs       = flag.Int("procs", 4, "processor slots on this node")
		drive       = flag.Bool("drive", false, "run the demo workload from this node, then exit")
		driveSOR    = flag.Bool("sor", false, "run a verified distributed SOR solve from this node, then exit")
		sorRows     = flag.Int("sor-rows", 26, "SOR grid rows")
		sorCols     = flag.Int("sor-cols", 26, "SOR grid columns")
		retries     = flag.Int("retries", 30, "startup retries while peers come up")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /trace, /faults and pprof on this address (empty = off)")
		tracing     = flag.Bool("trace", false, "record thread-journey events from startup (implied by -debug-addr)")
		traceOut    = flag.String("trace-out", "amber-trace.json", "Chrome trace file written after -drive/-sor when tracing")
		traceSample = flag.Uint64("trace-sample", 1, "record only thread journeys whose ID ≡ 0 (mod N); 1 = every journey")
		capCooldown = flag.Duration("capture-cooldown", trace.DefaultCaptureCooldown, "minimum spacing between anomaly-triggered cluster trace captures (0 = recorder off)")
		capOut      = flag.String("capture-out", "amber-capture", "anomaly capture file prefix; dumps land in <prefix>-<seq>.json")
		spaceShards = flag.Int("space-shards", 0, "lock stripes in the object space (0 = default, rounded up to a power of two)")
		hintCache   = flag.Int("hint-cache", 0, "total location-hint cache capacity, split across shards (0 = default)")
		replicaCap  = flag.Int("replica-cache", 0, "demand-pulled immutable-replica cache capacity, split across shards (0 = default, negative = disable replication)")
		replicaMax  = flag.Int("replica-max-bytes", 0, "largest object snapshot piggybacked on an invoke reply (0 = default 64KiB, negative = disable)")
		leaseTTL    = flag.Duration("lease-ttl", 0, "reader-lease lifetime for cacheable mutable objects (0 = default 2s, negative = disable leases)")
		steal       = flag.Bool("steal", true, "let idle processor slots steal queued threads from busy slots' run queues")
		heatIvl     = flag.Duration("heat-interval", 0, "heat-driven placement tick; hot objects migrate toward their dominant caller (0 = off)")
		heatRatio   = flag.Float64("heat-ratio", 0, "dominance ratio a remote caller's invoke rate needs over everyone else's to attract an object (0 = default 2.0)")
		heatMin     = flag.Float64("heat-min", 0, "minimum invoke rate (per heat interval) before an object may migrate (0 = default 16)")
		faultSeed   = flag.Int64("fault-seed", 0, "attach a seeded fault injector to this node's transport (0 = off)")
		faultsArg   = flag.String("faults", "", "fault script applied at startup, rules separated by ';' (e.g. 'drop 0 1 0.1; delay 1 2 1ms 5ms'); requires -fault-seed")
		rpcTO       = flag.Duration("rpc-timeout", 0, "bound internode requests (0 = wait forever); set when injecting faults")
	)
	flag.Parse()

	peers := make(map[gaddr.NodeID]string)
	maxID := *nodeID
	if *peerArg != "" {
		for _, kv := range strings.Split(*peerArg, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad peer %q (want id=host:port)", kv)
			}
			id, err := strconv.Atoi(parts[0])
			if err != nil {
				log.Fatalf("bad peer id %q", parts[0])
			}
			peers[gaddr.NodeID(id)] = parts[1]
			if id > maxID {
				maxID = id
			}
		}
	}

	tr, err := transport.NewTCP(transport.TCPConfig{
		Self:   gaddr.NodeID(*nodeID),
		Listen: *listen,
		Peers:  peers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	var faults *transport.Faults
	if *faultSeed != 0 {
		faults = transport.NewFaults(*faultSeed)
		tr.SetFaults(faults)
		if *faultsArg != "" {
			if err := faults.ApplyScript(*faultsArg); err != nil {
				log.Fatal(err)
			}
		}
	} else if *faultsArg != "" {
		log.Fatal("-faults requires -fault-seed")
	}

	reg := core.NewRegistry()
	if err := reg.Register(&DemoCounter{}); err != nil {
		log.Fatal(err)
	}
	if err := sor.RegisterAll(reg); err != nil {
		log.Fatal(err)
	}

	var server *gaddr.Server
	if *nodeID == 0 {
		server = gaddr.NewServer(0)
	}
	// One tracer for the whole process: the node's instrumentation sites and
	// the process-wide emitters (wire gob fallback, TCP dial retry) share it,
	// so cross-layer events land in a single ring.
	traceOn := *tracing || *debugAddr != ""
	tracer := trace.New(int32(*nodeID), 0)
	tracer.SetEnabled(traceOn)
	tracer.SetSample(*traceSample)
	trace.SetGlobal(tracer)
	// The generation number distinguishes this incarnation of the node from
	// any earlier one: peers that probe us after a restart see it change and
	// drop stale location hints.
	cfg := core.NodeConfig{
		ID: gaddr.NodeID(*nodeID), Procs: *procs, ServerNode: 0, Tracer: tracer,
		RPCTimeout:      *rpcTO,
		Generation:      uint64(time.Now().UnixNano()),
		SpaceShards:     *spaceShards,
		HintCache:       *hintCache,
		ReplicaCache:    *replicaCap,
		ReplicaMaxBytes: *replicaMax,
		LeaseTTL:        *leaseTTL,
		HeatInterval:    *heatIvl,
		HeatRatio:       *heatRatio,
		HeatMin:         *heatMin,
	}

	// Nodes other than 0 need the server up to get their initial regions;
	// retry while the cluster assembles.
	var node *core.Node
	for attempt := 0; ; attempt++ {
		node, err = core.NewNode(cfg, reg, tr, server)
		if err == nil {
			break
		}
		if attempt >= *retries {
			log.Fatalf("node %d failed to join: %v", *nodeID, err)
		}
		time.Sleep(time.Second)
	}
	node.Scheduler().SetStealing(*steal)
	log.Printf("amberd node %d up on %s (procs=%d, peers=%d)", *nodeID, tr.Addr(), *procs, len(peers))

	all := make([]gaddr.NodeID, 0, maxID+1)
	for id := 0; id <= maxID; id++ {
		all = append(all, gaddr.NodeID(id))
	}

	// The flight recorder: anomalies observed by this node (peer death,
	// deadline misses, retry exhaustion, heat-migration storms) snapshot
	// every reachable ring into one clock-aligned Chrome trace on disk —
	// the explanation is already written by the time someone goes looking.
	var capture *trace.Capture
	if traceOn && *capCooldown > 0 {
		capture = trace.NewCapture(int32(*nodeID), *capCooldown, func() ([]trace.Event, []string) {
			return node.CollectTraceBestEffort(all, 0)
		})
		capture.SetSink(func(d trace.Dump) {
			path := fmt.Sprintf("%s-%d.json", *capOut, d.Seq)
			f, err := os.Create(path)
			if err != nil {
				log.Printf("capture %d (%s): %v", d.Seq, d.Reason, err)
				return
			}
			defer f.Close()
			if err := trace.WriteChrome(f, d.Events); err != nil {
				log.Printf("capture %d (%s): %v", d.Seq, d.Reason, err)
				return
			}
			log.Printf("capture %d: %s (%s) — %d events from the cluster → %s",
				d.Seq, d.Reason, d.Detail, len(d.Events), path)
		})
		node.SetCapture(capture)
	}

	if *debugAddr != "" {
		dbg, err := debug.Serve(*debugAddr, debug.Options{
			Families: metricFamilies(tr, node),
			Extras:   func() []stats.ExtraMetric { return extraMetrics(node) },
			Tracer:   tracer,
			Space: func() ([]debug.SpaceShard, map[string]int64) {
				raw := node.Space().ShardStats()
				shards := make([]debug.SpaceShard, len(raw))
				for i, st := range raw {
					shards[i] = debug.SpaceShard{
						Shard:            i,
						Descriptors:      st.Descriptors,
						Hints:            st.Hints,
						Evictions:        int64(st.Evictions),
						Replicas:         st.Replicas,
						ReplicaEvictions: int64(st.ReplicaEvictions),
						Leases:           st.Leases,
					}
				}
				return shards, node.SpaceStats()
			},
			CollectTrace: func(last int) ([]trace.Event, error) {
				return node.CollectTrace(all, last)
			},
			Cluster: func(topN int) (debug.ClusterDump, error) {
				return node.CollectStats(all, topN), nil
			},
			Heat:      func(topN int) any { return node.HeatDump(topN) },
			Capture:   capture,
			Exemplars: node.Exemplars,
			Faults:    faults,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("introspection on http://%s (/metrics, /cluster, /heat, /capture, /trace, /trace.json, /faults, /debug/pprof/)", dbg.Addr())
	}

	if *driveSOR {
		// The paper's application over real sockets: sections distributed
		// across the amberd processes, verified against the sequential
		// solver in this process.
		numNodes := maxID + 1
		p := sor.DefaultProblem(*sorRows, *sorCols)
		const omega, eps, maxIters = 1.5, 1e-4, 20000
		res, err := sor.RunDistributedCtx(node.Root(), numNodes, sor.Config{
			Problem: p, Omega: omega, Eps: eps, MaxIters: maxIters,
			Overlap: true, ComputeThreads: *procs,
		})
		if err != nil {
			log.Fatalf("distributed SOR: %v", err)
		}
		want, wantIters, err := sor.SolveSequential(p, omega, eps, maxIters)
		if err != nil {
			log.Fatal(err)
		}
		diff := sor.MaxAbsDiff(want, res.Grid)
		fmt.Printf("SOR %dx%d over %d amberd processes: %d iterations in %v (seq: %d), max |Δ| = %.2e\n",
			*sorRows, *sorCols, numNodes, res.Iters, res.Elapsed.Round(time.Millisecond), wantIters, diff)
		if diff > 1e-9 || res.Iters != wantIters {
			log.Fatal("VERIFICATION FAILED")
		}
		fmt.Println("verification passed")
		printStatus(tr, node)
		if traceOn {
			dumpTrace(node, all, *traceOut)
		}
		os.Exit(0)
	}

	if !*drive {
		select {} // serve until killed
	}

	// --- demo workload ---
	ctx := node.Root()
	ref, err := ctx.New(&DemoCounter{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created counter %#x on node %d\n", uint64(ref), *nodeID)

	for _, dest := range all {
		start := time.Now()
		if err := ctx.MoveTo(ref, dest); err != nil {
			log.Fatalf("move to node %d: %v", dest, err)
		}
		moveT := time.Since(start)
		start = time.Now()
		out, err := ctx.Invoke(ref, "Where")
		if err != nil {
			log.Fatalf("invoke on node %d: %v", dest, err)
		}
		invT := time.Since(start)
		out2, err := ctx.Invoke(ref, "Add", 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  moved to node %-2v in %-10v  invoke %-10v  (executed on %v, count=%v)\n",
			dest, moveT.Round(time.Microsecond), invT.Round(time.Microsecond), out[0], out2[0])
	}
	out, _ := ctx.Invoke(ref, "Add", 0)
	fmt.Printf("final count %v after visiting %d nodes — demo complete\n", out[0], len(all))
	printStatus(tr, node)
	if traceOn {
		dumpTrace(node, all, *traceOut)
	}
	os.Exit(0)
}
