// amber-bench regenerates every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index):
//
//	table1     — §5 Table 1: latency of the five primitive operations,
//	             measured on the real runtime under the 1989 profile.
//	fig2       — §6 Figure 2: SOR speedup per node×processor configuration
//	             (DES model of the Firefly testbed).
//	fig3       — §6 Figure 3: SOR speedup vs problem size at 4Nx4P.
//	locks      — §4.1: lock contention, Amber vs Ivy page-DSM.
//	falseshare — §4.2: sub-page false sharing.
//	bigobject  — §4.2: scanning an object larger than a page.
//	ivysor     — E11: the SOR application on Amber vs on the Ivy DSM (the
//	             head-to-head §6 could not run).
//	forwarding — §3.3 ablation: forwarding chains and chain caching.
//	sensitivity— E12: the §5 prediction (faster CPUs vs enduring latency).
//	mobility   — §2.3 ablation: attachment and immutable replication.
//	all        — everything above.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"amber/internal/perf"
	"amber/internal/transport"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (see -help)")
		iters      = flag.Int("iters", 0, "iterations/critical sections per experiment (0 = sensible default)")
		profile    = flag.String("profile", "1989", "network profile for table1: 1989 | instant | fastlan")
	)
	flag.Parse()

	prof := transport.Ethernet1989
	switch *profile {
	case "1989":
	case "instant":
		prof = transport.Instant
	case "fastlan":
		prof = transport.FastLAN
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	runs := map[string]func() error{
		"table1": func() error {
			n := orDefault(*iters, 25)
			fmt.Printf("(measuring %d iterations per operation under the %s profile)\n", n, *profile)
			rows, err := perf.MeasureTable1(n, prof)
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatTable1(rows))
			return nil
		},
		"fig2": func() error {
			pts, err := perf.RunFigure2(orDefault(*iters, 25))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatSOR(
				"Figure 2: SOR speedup, 122x842 grid (DES model, CVAX/Ethernet 1989 calibration)",
				pts, false))
			return nil
		},
		"fig3": func() error {
			pts, err := perf.RunFigure3(orDefault(*iters, 25))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatSOR(
				"Figure 3: SOR speedup vs problem size at 4Nx4P (DES model)",
				pts, true))
			return nil
		},
		"locks": func() error {
			rows, err := perf.LockContention(orDefault(*iters, 50))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatCompare(
				"E5 (§4.1): lock contention across two nodes — messages per critical section",
				rows))
			return nil
		},
		"falseshare": func() error {
			rows, err := perf.FalseSharing(orDefault(*iters, 50))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatCompare(
				"E6 (§4.2): false sharing of small data items",
				rows))
			return nil
		},
		"bigobject": func() error {
			rows, err := perf.BigObject(64)
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatCompare(
				"E7 (§4.2): one node scans a remote 64 KiB object",
				rows))
			return nil
		},
		"forwarding": func() error {
			rows, err := perf.ForwardingChains(6)
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatChains(rows))
			return nil
		},
		"ivysor": func() error {
			rows, err := perf.CompareSORSystems(34, 34, 4, 5000)
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatSORCompare(rows, 34, 34))
			return nil
		},
		"sensitivity": func() error {
			rows, err := perf.RunSensitivity(orDefault(*iters, 25))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatSensitivity(rows))
			return nil
		},
		"mobility": func() error {
			rows, err := perf.MobilityAblation(6, orDefault(*iters, 20))
			if err != nil {
				return err
			}
			fmt.Print(perf.FormatMobility(rows))
			return nil
		},
	}

	order := []string{"table1", "fig2", "fig3", "locks", "falseshare", "bigobject", "ivysor", "forwarding", "mobility", "sensitivity"}
	var selected []string
	if *experiment == "all" {
		selected = order
	} else {
		if _, ok := runs[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all %s\n",
				*experiment, strings.Join(order, " "))
			os.Exit(2)
		}
		selected = []string{*experiment}
	}
	for i, name := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("==== %s ====\n", name)
		if err := runs[name](); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
